package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"encoding/gob"

	"tcache/internal/core"
	"tcache/internal/kv"
)

// Errors mapped from response codes.
var (
	// ErrAborted mirrors core.ErrTxnAborted across the wire.
	ErrAborted = core.ErrTxnAborted
	// ErrNotFound mirrors core.ErrNotFound across the wire.
	ErrNotFound = core.ErrNotFound
	// ErrConflict reports an update-transaction conflict; retry.
	ErrConflict = errors.New("transport: update conflict, retry")
)

// conn is one request/response connection with its codecs.
type conn struct {
	mu  sync.Mutex
	c   net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
}

func dialConn(addr string) (*conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return &conn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}, nil
}

// roundTrip sends req and decodes one response; safe for concurrent use.
func (cn *conn) roundTrip(req Request) (Response, error) {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if err := cn.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("transport: send: %w", err)
	}
	var resp Response
	if err := cn.dec.Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("transport: recv: %w", err)
	}
	return resp, nil
}

func (cn *conn) close() { cn.c.Close() }

// DBClient talks to a tdbd instance. It implements core.Backend, so a
// remote database can back a local cache. Safe for concurrent use; a
// small connection pool avoids head-of-line blocking.
type DBClient struct {
	addr  string
	pool  []*conn
	next  atomic.Uint64
	close sync.Once
}

var _ core.Backend = (*DBClient)(nil)

// DialDB connects poolSize connections to a tdbd at addr (poolSize < 1
// means 1).
func DialDB(addr string, poolSize int) (*DBClient, error) {
	if poolSize < 1 {
		poolSize = 1
	}
	c := &DBClient{addr: addr}
	for i := 0; i < poolSize; i++ {
		cn, err := dialConn(addr)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.pool = append(c.pool, cn)
	}
	return c, nil
}

// Close closes all pooled connections.
func (c *DBClient) Close() {
	c.close.Do(func() {
		for _, cn := range c.pool {
			cn.close()
		}
	})
}

func (c *DBClient) pick() *conn {
	return c.pool[int(c.next.Add(1))%len(c.pool)]
}

// Get implements core.Backend: a lock-free committed read.
func (c *DBClient) Get(key kv.Key) (kv.Item, bool) {
	resp, err := c.pick().roundTrip(Request{Op: OpGet, Key: key})
	if err != nil || resp.Code != CodeOK {
		return kv.Item{}, false
	}
	return resp.Item, true
}

// Update runs one update transaction (read set, then write set) and
// returns the commit version. Conflicts surface as ErrConflict.
func (c *DBClient) Update(reads []kv.Key, writes []KeyValue) (kv.Version, error) {
	resp, err := c.pick().roundTrip(Request{Op: OpUpdate, Reads: reads, Writes: writes})
	if err != nil {
		return kv.Version{}, err
	}
	switch resp.Code {
	case CodeOK:
		return resp.Version, nil
	case CodeConflict:
		return kv.Version{}, fmt.Errorf("%w: %s", ErrConflict, resp.Err)
	default:
		return kv.Version{}, fmt.Errorf("transport: update: %s", resp.Err)
	}
}

// Ping checks liveness.
func (c *DBClient) Ping() error {
	resp, err := c.pick().roundTrip(Request{Op: OpPing})
	if err != nil {
		return err
	}
	if resp.Code != CodeOK {
		return fmt.Errorf("transport: ping: %s", resp.Err)
	}
	return nil
}

// SubscribeInvalidations opens a dedicated connection to a tdbd and
// streams invalidations into deliver until the connection drops or stop
// is called. deliver runs on the receive goroutine.
func SubscribeInvalidations(addr, name string, deliver func(Invalidation)) (stop func(), err error) {
	cn, err := dialConn(addr)
	if err != nil {
		return nil, err
	}
	resp, err := cn.roundTrip(Request{Op: OpSubscribe, Subscriber: name})
	if err != nil {
		cn.close()
		return nil, err
	}
	if resp.Code != CodeOK {
		cn.close()
		return nil, fmt.Errorf("transport: subscribe: %s", resp.Err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			var inv Invalidation
			if err := cn.dec.Decode(&inv); err != nil {
				return
			}
			deliver(inv)
		}
	}()
	return func() {
		cn.close()
		<-done
	}, nil
}

// CacheClient talks to a tcached instance.
type CacheClient struct {
	cn    *conn
	txnID atomic.Uint64
}

// DialCache connects to a tcached at addr.
func DialCache(addr string) (*CacheClient, error) {
	cn, err := dialConn(addr)
	if err != nil {
		return nil, err
	}
	return &CacheClient{cn: cn}, nil
}

// Close closes the connection.
func (c *CacheClient) Close() { c.cn.close() }

// Get performs a plain cache read.
func (c *CacheClient) Get(key kv.Key) (kv.Value, error) {
	resp, err := c.cn.roundTrip(Request{Op: OpGet, Key: key})
	if err != nil {
		return nil, err
	}
	return decodeRead(resp)
}

// Read performs one transactional read: read(txnID, key, lastOp).
func (c *CacheClient) Read(txnID uint64, key kv.Key, lastOp bool) (kv.Value, error) {
	resp, err := c.cn.roundTrip(Request{Op: OpRead, TxnID: txnID, Key: key, LastOp: lastOp})
	if err != nil {
		return nil, err
	}
	return decodeRead(resp)
}

// NewTxnID mints a client-unique transaction id.
func (c *CacheClient) NewTxnID() uint64 { return c.txnID.Add(1) }

// Commit finalizes a transaction without a further read.
func (c *CacheClient) Commit(txnID uint64) error {
	_, err := c.cn.roundTrip(Request{Op: OpCommit, TxnID: txnID})
	return err
}

// Abort discards a transaction.
func (c *CacheClient) Abort(txnID uint64) error {
	_, err := c.cn.roundTrip(Request{Op: OpAbort, TxnID: txnID})
	return err
}

// Stats fetches the server's counters.
func (c *CacheClient) Stats() (map[string]uint64, error) {
	resp, err := c.cn.roundTrip(Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	if resp.Code != CodeOK {
		return nil, fmt.Errorf("transport: stats: %s", resp.Err)
	}
	return resp.Stats, nil
}

// Ping checks liveness.
func (c *CacheClient) Ping() error {
	resp, err := c.cn.roundTrip(Request{Op: OpPing})
	if err != nil {
		return err
	}
	if resp.Code != CodeOK {
		return fmt.Errorf("transport: ping: %s", resp.Err)
	}
	return nil
}

func decodeRead(resp Response) (kv.Value, error) {
	switch resp.Code {
	case CodeOK:
		return resp.Value, nil
	case CodeAborted:
		return nil, fmt.Errorf("%w: %s", ErrAborted, resp.Err)
	case CodeNotFound:
		return nil, ErrNotFound
	default:
		return nil, fmt.Errorf("transport: read: %s", resp.Err)
	}
}
