package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"encoding/gob"

	"tcache/internal/core"
	"tcache/internal/kv"
)

// Errors mapped from response codes.
var (
	// ErrAborted mirrors core.ErrTxnAborted across the wire.
	ErrAborted = core.ErrTxnAborted
	// ErrNotFound mirrors core.ErrNotFound across the wire.
	ErrNotFound = core.ErrNotFound
	// ErrConflict reports an update-transaction conflict; retry.
	ErrConflict = errors.New("transport: update conflict, retry")
	// ErrClientClosed reports an operation on a closed client.
	ErrClientClosed = errors.New("transport: client closed")
)

// conn is one request/response connection with its codecs. Callers
// serialize access (poolSlot.opMu or the subscription goroutine).
type conn struct {
	c   net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
	// tainted marks that a ctx interrupt fired around (possibly after) a
	// completed exchange: the socket deadline may be poisoned, so the
	// connection must not be reused even if the round trip succeeded.
	tainted bool
}

func dialConn(ctx context.Context, addr string) (*conn, error) {
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return &conn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}, nil
}

// roundTrip sends req and decodes one response. ctx cancellation
// interrupts in-flight I/O by forcing a past deadline onto the socket;
// the gob stream may then be mid-frame, so the caller must discard the
// connection on any error (and on cn.tainted).
func (cn *conn) roundTrip(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	// No goroutine on the happy path: the interrupt runs only if ctx
	// actually fires.
	stop := context.AfterFunc(ctx, func() {
		cn.c.SetDeadline(time.Unix(1, 0)) // interrupt blocked I/O
	})
	err := cn.enc.Encode(req)
	var resp Response
	if err == nil {
		err = cn.dec.Decode(&resp)
	}
	if !stop() {
		// The interrupt already started — possibly concurrently with a
		// completed exchange; there is no way to wait it out, so the
		// connection is done after this call either way.
		cn.tainted = true
	}
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Response{}, ctxErr
		}
		return Response{}, fmt.Errorf("transport: round trip: %w", err)
	}
	return resp, nil
}

func (cn *conn) close() { cn.c.Close() }

// pool is a fixed-size set of lazily (re)dialed connections. A slot whose
// round trip fails is discarded and redialed on next use, so a restarted
// server is picked up transparently.
type pool struct {
	addr   string
	slots  []*poolSlot
	next   atomic.Uint64
	closed atomic.Bool
}

// poolSlot guards its connection with two locks: opMu serializes whole
// round trips (requests and responses alternate per connection), while
// connMu guards only the cn pointer. close() takes connMu alone, so it
// can slam the socket shut under a round trip blocked in opMu — the
// blocked I/O errors out instead of wedging Close forever.
type poolSlot struct {
	opMu   sync.Mutex
	connMu sync.Mutex
	cn     *conn
}

// install stores cn unless the pool is closed, in which case the
// connection is closed and false returned.
func (s *poolSlot) install(p *pool, cn *conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if p.closed.Load() {
		cn.close()
		return false
	}
	s.cn = cn
	return true
}

// discard closes and clears the slot's connection if it is still cn.
func (s *poolSlot) discard(cn *conn) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	cn.close()
	if s.cn == cn {
		s.cn = nil
	}
}

func newPool(ctx context.Context, addr string, size int) (*pool, error) {
	if size < 1 {
		size = 1
	}
	p := &pool{addr: addr, slots: make([]*poolSlot, size)}
	for i := range p.slots {
		p.slots[i] = &poolSlot{}
	}
	// Establish the first connection eagerly so an unreachable address
	// fails at dial time, not at first use; start the rotation so the
	// first request lands on it.
	cn, err := dialConn(ctx, addr)
	if err != nil {
		return nil, err
	}
	p.slots[0].cn = cn
	p.next.Store(^uint64(0))
	return p, nil
}

// close closes every pooled connection without waiting for in-flight
// round trips: a blocked exchange fails with a socket error instead of
// holding close hostage.
func (p *pool) close() {
	if p.closed.Swap(true) {
		return
	}
	for _, s := range p.slots {
		s.connMu.Lock()
		if s.cn != nil {
			s.cn.close()
			s.cn = nil
		}
		s.connMu.Unlock()
	}
}

// roundTrip runs one request on the next pool slot. A failure on a
// pooled (possibly stale) connection is retried once on a fresh dial —
// but only for idempotent operations: an Update whose response was lost
// may already have been applied.
func (p *pool) roundTrip(ctx context.Context, req Request) (Response, error) {
	if p.closed.Load() {
		return Response{}, ErrClientClosed
	}
	s := p.slots[int(p.next.Add(1))%len(p.slots)]
	s.opMu.Lock()
	defer s.opMu.Unlock()
	s.connMu.Lock()
	cn := s.cn
	s.connMu.Unlock()
	fresh := cn == nil
	if fresh {
		if p.closed.Load() {
			return Response{}, ErrClientClosed
		}
		var err error
		if cn, err = dialConn(ctx, p.addr); err != nil {
			return Response{}, err
		}
		if !s.install(p, cn) {
			return Response{}, ErrClientClosed
		}
	}
	resp, err := cn.roundTrip(ctx, req)
	if err == nil && cn.tainted {
		s.discard(cn)
		return resp, nil
	}
	if err != nil {
		// The stream may be mid-frame; the connection cannot be reused.
		s.discard(cn)
		if p.closed.Load() {
			return Response{}, ErrClientClosed
		}
		if !fresh && idempotent(req.Op) && ctx.Err() == nil {
			cn, derr := dialConn(ctx, p.addr)
			if derr != nil {
				return Response{}, err
			}
			if !s.install(p, cn) {
				return Response{}, ErrClientClosed
			}
			resp, err = cn.roundTrip(ctx, req)
			if err != nil || cn.tainted {
				s.discard(cn)
			}
		}
	}
	return resp, err
}

// idempotent reports whether op can safely be re-sent after a failure
// whose outcome is unknown. Reads and pings qualify; updates do not (the
// first send may have committed), and commit/abort acknowledgements are
// not worth a blind resend either.
func idempotent(op Op) bool {
	switch op {
	case OpGet, OpGetBatch, OpPing, OpStats:
		return true
	default:
		return false
	}
}

// DBClient talks to a tdbd instance. It implements core.Backend (and its
// batch extension), so a remote database can back a local cache. Safe for
// concurrent use; a small connection pool avoids head-of-line blocking,
// and failed connections are redialed transparently.
type DBClient struct {
	p *pool
}

var (
	_ core.Backend      = (*DBClient)(nil)
	_ core.BatchBackend = (*DBClient)(nil)
)

// DialDB connects to a tdbd at addr with a pool of poolSize connections
// (poolSize < 1 means 1). ctx bounds the initial dial.
func DialDB(ctx context.Context, addr string, poolSize int) (*DBClient, error) {
	p, err := newPool(ctx, addr, poolSize)
	if err != nil {
		return nil, err
	}
	return &DBClient{p: p}, nil
}

// Close closes all pooled connections.
func (c *DBClient) Close() { c.p.close() }

// ReadItem implements core.Backend: a lock-free committed read, one round
// trip.
func (c *DBClient) ReadItem(ctx context.Context, key kv.Key) (kv.Item, bool, error) {
	resp, err := c.p.roundTrip(ctx, Request{Op: OpGet, Key: key})
	if err != nil {
		return kv.Item{}, false, err
	}
	switch resp.Code {
	case CodeOK:
		return resp.Item, true, nil
	case CodeNotFound:
		return kv.Item{}, false, nil
	default:
		return kv.Item{}, false, fmt.Errorf("transport: get: %s", resp.Err)
	}
}

// ReadItems implements core.BatchBackend: all keys in one round trip.
func (c *DBClient) ReadItems(ctx context.Context, keys []kv.Key) ([]kv.Lookup, error) {
	resp, err := c.p.roundTrip(ctx, Request{Op: OpGetBatch, Keys: keys})
	if err != nil {
		return nil, err
	}
	if resp.Code != CodeOK {
		return nil, fmt.Errorf("transport: get-batch: %s", resp.Err)
	}
	if len(resp.Batch) != len(keys) {
		return nil, fmt.Errorf("transport: get-batch: %d results for %d keys", len(resp.Batch), len(keys))
	}
	return resp.Batch, nil
}

// Update runs one update transaction (read set, then write set) and
// returns the commit version. Conflicts surface as ErrConflict.
func (c *DBClient) Update(ctx context.Context, reads []kv.Key, writes []KeyValue) (kv.Version, error) {
	resp, err := c.p.roundTrip(ctx, Request{Op: OpUpdate, Reads: reads, Writes: writes})
	if err != nil {
		return kv.Version{}, err
	}
	switch resp.Code {
	case CodeOK:
		return resp.Version, nil
	case CodeConflict:
		return kv.Version{}, fmt.Errorf("%w: %s", ErrConflict, resp.Err)
	default:
		return kv.Version{}, fmt.Errorf("transport: update: %s", resp.Err)
	}
}

// Ping checks liveness.
func (c *DBClient) Ping(ctx context.Context) error {
	resp, err := c.p.roundTrip(ctx, Request{Op: OpPing})
	if err != nil {
		return err
	}
	if resp.Code != CodeOK {
		return fmt.Errorf("transport: ping: %s", resp.Err)
	}
	return nil
}

// subscribeConn dials addr and switches the connection into the server's
// invalidation push mode for subscriber name.
func subscribeConn(ctx context.Context, addr, name string) (*conn, error) {
	cn, err := dialConn(ctx, addr)
	if err != nil {
		return nil, err
	}
	resp, err := cn.roundTrip(ctx, Request{Op: OpSubscribe, Subscriber: name})
	if err != nil {
		cn.close()
		return nil, err
	}
	if resp.Code != CodeOK {
		cn.close()
		return nil, fmt.Errorf("transport: subscribe: %s", resp.Err)
	}
	return cn, nil
}

// SubscribeInvalidations opens a dedicated connection to a tdbd and
// streams invalidations into deliver until ctx is cancelled or stop is
// called. When the stream breaks (server restart, network blip) it
// redials and resubscribes automatically with exponential backoff, so a
// cache stays attached to its invalidation feed across reconnects;
// invalidations sent during the gap are lost, which is exactly the lossy
// asynchronous channel the T-Cache protocol is designed to survive.
// deliver runs on the receive goroutine.
//
// The initial subscribe uses name verbatim, so a second live cache with
// the same name is rejected (the duplicate-subscriber protection).
// Reconnect attempts append "#<epoch>" to the name: after a half-open
// disconnect the server may still hold the previous registration (it
// only notices the dead peer when a push fails or its read errors), and
// retrying the bare name would be locked out by our own corpse forever.
func SubscribeInvalidations(ctx context.Context, addr, name string, deliver func(Invalidation)) (stop func(), err error) {
	sctx, cancel := context.WithCancel(ctx)
	cn, err := subscribeConn(sctx, addr, name)
	if err != nil {
		cancel()
		return nil, err
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		epoch := 0
		for {
			streamInvalidations(sctx, cn, deliver)
			if sctx.Err() != nil {
				return
			}
			// Reconnect with backoff until the subscription is cancelled.
			epoch++
			backoff := 10 * time.Millisecond
			for {
				next, err := subscribeConn(sctx, addr, fmt.Sprintf("%s#%d", name, epoch))
				if err == nil {
					cn = next
					break
				}
				select {
				case <-sctx.Done():
					return
				case <-time.After(backoff):
				}
				if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
			}
		}
	}()
	return func() {
		cancel()
		<-done
	}, nil
}

// streamInvalidations decodes pushes from cn until the connection breaks
// or ctx is cancelled; it closes cn before returning.
func streamInvalidations(ctx context.Context, cn *conn, deliver func(Invalidation)) {
	stop := context.AfterFunc(ctx, cn.close) // unblock the decoder on cancel
	defer func() {
		stop()
		cn.close()
	}()
	for {
		var inv Invalidation
		if err := cn.dec.Decode(&inv); err != nil {
			return
		}
		deliver(inv)
	}
}

// CacheClient talks to a tcached instance. Safe for concurrent use; its
// single connection redials transparently after failures.
type CacheClient struct {
	p     *pool
	txnID atomic.Uint64
}

// DialCache connects to a tcached at addr. ctx bounds the dial.
func DialCache(ctx context.Context, addr string) (*CacheClient, error) {
	p, err := newPool(ctx, addr, 1)
	if err != nil {
		return nil, err
	}
	return &CacheClient{p: p}, nil
}

// Close closes the connection.
func (c *CacheClient) Close() { c.p.close() }

// Get performs a plain cache read.
func (c *CacheClient) Get(ctx context.Context, key kv.Key) (kv.Value, error) {
	resp, err := c.p.roundTrip(ctx, Request{Op: OpGet, Key: key})
	if err != nil {
		return nil, err
	}
	return decodeRead(resp)
}

// Read performs one transactional read: read(txnID, key, lastOp).
func (c *CacheClient) Read(ctx context.Context, txnID uint64, key kv.Key, lastOp bool) (kv.Value, error) {
	resp, err := c.p.roundTrip(ctx, Request{Op: OpRead, TxnID: txnID, Key: key, LastOp: lastOp})
	if err != nil {
		return nil, err
	}
	return decodeRead(resp)
}

// ReadMulti performs the transactional reads of keys, in order, within
// txnID — one round trip for the whole batch.
func (c *CacheClient) ReadMulti(ctx context.Context, txnID uint64, keys []kv.Key, lastOp bool) ([]kv.Value, error) {
	resp, err := c.p.roundTrip(ctx, Request{Op: OpReadMulti, TxnID: txnID, Keys: keys, LastOp: lastOp})
	if err != nil {
		return nil, err
	}
	if resp.Code != CodeOK {
		_, err := decodeRead(resp)
		return nil, err
	}
	if len(resp.Values) != len(keys) {
		return nil, fmt.Errorf("transport: read-multi: %d values for %d keys", len(resp.Values), len(keys))
	}
	return resp.Values, nil
}

// NewTxnID mints a client-unique transaction id.
func (c *CacheClient) NewTxnID() uint64 { return c.txnID.Add(1) }

// Commit finalizes a transaction without a further read.
func (c *CacheClient) Commit(ctx context.Context, txnID uint64) error {
	_, err := c.p.roundTrip(ctx, Request{Op: OpCommit, TxnID: txnID})
	return err
}

// Abort discards a transaction.
func (c *CacheClient) Abort(ctx context.Context, txnID uint64) error {
	_, err := c.p.roundTrip(ctx, Request{Op: OpAbort, TxnID: txnID})
	return err
}

// Stats fetches the server's counters.
func (c *CacheClient) Stats(ctx context.Context) (map[string]uint64, error) {
	resp, err := c.p.roundTrip(ctx, Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	if resp.Code != CodeOK {
		return nil, fmt.Errorf("transport: stats: %s", resp.Err)
	}
	return resp.Stats, nil
}

// Ping checks liveness.
func (c *CacheClient) Ping(ctx context.Context) error {
	resp, err := c.p.roundTrip(ctx, Request{Op: OpPing})
	if err != nil {
		return err
	}
	if resp.Code != CodeOK {
		return fmt.Errorf("transport: ping: %s", resp.Err)
	}
	return nil
}

func decodeRead(resp Response) (kv.Value, error) {
	switch resp.Code {
	case CodeOK:
		return resp.Value, nil
	case CodeAborted:
		return nil, fmt.Errorf("%w: %s", ErrAborted, resp.Err)
	case CodeNotFound:
		return nil, ErrNotFound
	default:
		return nil, fmt.Errorf("transport: read: %s", resp.Err)
	}
}
