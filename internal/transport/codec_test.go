package transport

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"tcache/internal/kv"
)

// sampleRequests covers every field shape the Request encoder handles,
// including the nil/empty distinctions the codec must preserve.
func sampleRequests() []Request {
	return []Request{
		{},
		{Op: OpPing},
		{Op: OpGet, Key: "user:42"},
		{Op: OpRead, Key: "k", TxnID: 77, LastOp: true},
		{Op: OpGetBatch, Keys: []kv.Key{"a", "b", "c"}},
		{Op: OpReadMulti, TxnID: 3, Keys: []kv.Key{}, LastOp: false},
		{Op: OpSubscribe, Subscriber: "edge-1#4"},
		{Op: OpUpdate, Reads: []kv.Key{"x"}, Writes: []KeyValue{
			{Key: "x", Value: kv.Value("v1")},
			{Key: "y", Value: kv.Value{}},
			{Key: "z", Value: nil},
		}},
		{Op: "bogus", Key: "weird\x00key", Subscriber: "ütf8"},
	}
}

// sampleResponses covers every field shape of the Response encoder.
func sampleResponses() []Response {
	return []Response{
		{},
		{Code: CodeOK},
		{Code: CodeNotFound, Err: "nope"},
		{Code: CodeOK, Value: kv.Value("hello"), Found: true},
		{Code: CodeOK, Value: kv.Value{}, Found: true},
		{Code: CodeOK, Found: true, Item: kv.Item{
			Value:   kv.Value("payload"),
			Version: kv.Version{Counter: 99, Node: 7},
			Deps: kv.DepList{
				{Key: "a", Version: kv.Version{Counter: 1}},
				{Key: "b", Version: kv.Version{Counter: 2, Node: 3}},
			},
		}},
		{Code: CodeOK, Version: kv.Version{Counter: 1 << 60, Node: ^uint32(0)}},
		{Code: CodeOK, Batch: []kv.Lookup{
			{Item: kv.Item{Value: kv.Value("v"), Version: kv.Version{Counter: 5}, Deps: kv.DepList{}}, Found: true},
			{},
		}},
		{Code: CodeOK, Values: []kv.Value{kv.Value("a"), nil, kv.Value{}}},
		{Code: CodeOK, Stats: map[string]uint64{"hits": 12, "misses": 3}},
		{Code: CodeOK, Stats: map[string]uint64{}},
		{Code: CodeAborted, Err: "eq.1 violation"},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, req := range sampleRequests() {
		enc := appendRequest(nil, &req)
		got, err := decodeRequest(enc)
		if err != nil {
			t.Fatalf("decode(%+v): %v", req, err)
		}
		if !reflect.DeepEqual(got, req) {
			t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, req)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, resp := range sampleResponses() {
		enc := appendResponse(nil, &resp)
		got, err := decodeResponse(enc)
		if err != nil {
			t.Fatalf("decode(%+v): %v", resp, err)
		}
		if !reflect.DeepEqual(got, resp) {
			t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, resp)
		}
	}
}

func TestInvalidationRoundTrip(t *testing.T) {
	batches := [][]Invalidation{
		{{Key: "k", Version: kv.Version{Counter: 9, Node: 2}}},
		{{Key: "a"}, {Key: "b", Version: kv.Version{Counter: 1}}, {Key: "c", Version: kv.Version{Counter: 1 << 50}}},
	}
	for _, invs := range batches {
		enc := appendInvalidations(nil, invs)
		got, err := decodeInvalidations(enc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, invs) {
			t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, invs)
		}
	}
}

// TestDecodeTruncatedNeverPanics feeds every strict prefix of valid
// encodings to the decoders: each must error (the message is incomplete)
// and none may panic.
func TestDecodeTruncatedNeverPanics(t *testing.T) {
	for _, req := range sampleRequests() {
		enc := appendRequest(nil, &req)
		for i := 0; i < len(enc); i++ {
			if _, err := decodeRequest(enc[:i]); err == nil {
				t.Fatalf("truncated request decode at %d/%d succeeded", i, len(enc))
			}
		}
	}
	for _, resp := range sampleResponses() {
		enc := appendResponse(nil, &resp)
		for i := 0; i < len(enc); i++ {
			if _, err := decodeResponse(enc[:i]); err == nil {
				t.Fatalf("truncated response decode at %d/%d succeeded", i, len(enc))
			}
		}
	}
}

// TestDecodeOversizedCountErrs builds payloads whose element counts claim
// absurd lengths; the decoder must reject them without attempting the
// allocation.
func TestDecodeOversizedCountErrs(t *testing.T) {
	// A response whose Batch count claims 2^40 lookups.
	var b []byte
	b = appendUvarintForTest(b, uint64(CodeOK)) // Code
	b = appendString(b, "")                     // Err
	b = appendBytesNil(b, nil)                  // Value
	b = appendBool(b, false)                    // Found
	b = appendItem(b, kv.Item{})                // Item
	b = appendVersion(b, kv.Version{})          // Version
	b = appendUvarintForTest(b, (1<<40)+1)      // Batch count: 2^40 entries
	if _, err := decodeResponse(b); !errors.Is(err, ErrTruncatedFrame) {
		t.Fatalf("oversized batch count: err = %v, want ErrTruncatedFrame", err)
	}

	// An invalidation batch claiming 2^40 entries.
	inv := appendUvarintForTest(nil, 1<<40)
	if _, err := decodeInvalidations(inv); !errors.Is(err, ErrTruncatedFrame) {
		t.Fatalf("oversized invalidation count: err = %v, want ErrTruncatedFrame", err)
	}
}

// appendUvarintForTest mirrors binary.AppendUvarint without importing it
// at every call site.
func appendUvarintForTest(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// TestFrameReaderResync writes garbage between two valid frames; the
// reader must skip to the next frame boundary instead of failing the
// stream — the recovery the gob framing could not do.
func TestFrameReaderResync(t *testing.T) {
	var stream bytes.Buffer
	req1 := Request{Op: OpPing}
	if err := writeRequestFrame(&stream, nil, 1, &req1); err != nil {
		t.Fatal(err)
	}
	stream.WriteString("!!this is not a frame boundary!!")
	req2 := Request{Op: OpGet, Key: "k"}
	if err := writeRequestFrame(&stream, nil, 2, &req2); err != nil {
		t.Fatal(err)
	}

	fr := newFrameReader(&stream, nil)
	typ, id, payload, err := fr.Read()
	if err != nil || typ != frameRequest || id != 1 {
		t.Fatalf("frame 1 = (%d, %d, %v)", typ, id, err)
	}
	if got, err := decodeRequest(payload); err != nil || got.Op != OpPing {
		t.Fatalf("frame 1 decode = %+v, %v", got, err)
	}
	typ, id, payload, err = fr.Read()
	if err != nil || typ != frameRequest || id != 2 {
		t.Fatalf("frame 2 after garbage = (%d, %d, %v)", typ, id, err)
	}
	if got, err := decodeRequest(payload); err != nil || got.Key != "k" {
		t.Fatalf("frame 2 decode = %+v, %v", got, err)
	}
	if fr.Resyncs != 1 {
		t.Fatalf("Resyncs = %d, want 1", fr.Resyncs)
	}
}

// TestFrameReaderOversizedLengthResyncs feeds a header whose length field
// exceeds the frame cap: the reader must treat it as garbage (no giant
// allocation) and resync onto the following valid frame.
func TestFrameReaderOversizedLengthResyncs(t *testing.T) {
	var stream bytes.Buffer
	bad := beginFrame(nil, frameRequest, 9)
	bad[frameHeaderSize-4] = 0xFF // length = 0xFF000000 > maxFramePayload
	stream.Write(bad)
	req := Request{Op: OpPing}
	if err := writeRequestFrame(&stream, nil, 3, &req); err != nil {
		t.Fatal(err)
	}
	fr := newFrameReader(&stream, nil)
	typ, id, _, err := fr.Read()
	if err != nil || typ != frameRequest || id != 3 {
		t.Fatalf("frame after oversized header = (%d, %d, %v)", typ, id, err)
	}
	if fr.Resyncs == 0 {
		t.Fatal("oversized header accepted without resync")
	}
}

func TestFrameReaderEOFOnGarbageOnly(t *testing.T) {
	fr := newFrameReader(bytes.NewBufferString("garbage with no frame in it whatsoever"), nil)
	if _, _, _, err := fr.Read(); !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("garbage-only stream: err = %v, want EOF", err)
	}
}

// FuzzCodecRoundTrip drives all three decoders with arbitrary bytes: they
// must never panic and never over-allocate, and anything they accept must
// survive an encode/decode round trip unchanged.
func FuzzCodecRoundTrip(f *testing.F) {
	for _, req := range sampleRequests() {
		f.Add(appendRequest(nil, &req))
	}
	for _, resp := range sampleResponses() {
		f.Add(appendResponse(nil, &resp))
	}
	f.Add(appendInvalidations(nil, []Invalidation{{Key: "k", Version: kv.Version{Counter: 3}}}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := decodeRequest(data); err == nil {
			enc := appendRequest(nil, &req)
			again, err := decodeRequest(enc)
			if err != nil {
				t.Fatalf("re-decode request: %v", err)
			}
			if !reflect.DeepEqual(again, req) {
				t.Fatalf("request round trip diverged:\n got %#v\nwant %#v", again, req)
			}
		}
		if resp, err := decodeResponse(data); err == nil {
			enc := appendResponse(nil, &resp)
			again, err := decodeResponse(enc)
			if err != nil {
				t.Fatalf("re-decode response: %v", err)
			}
			if !reflect.DeepEqual(again, resp) {
				t.Fatalf("response round trip diverged:\n got %#v\nwant %#v", again, resp)
			}
		}
		if invs, err := decodeInvalidations(data); err == nil {
			enc := appendInvalidations(nil, invs)
			again, err := decodeInvalidations(enc)
			if err != nil {
				t.Fatalf("re-decode invalidations: %v", err)
			}
			if !reflect.DeepEqual(again, invs) {
				t.Fatalf("invalidation round trip diverged:\n got %#v\nwant %#v", again, invs)
			}
		}
	})
}

func TestHandshakeRoundTrip(t *testing.T) {
	hs := handshakeBytes()
	v, err := readHandshake(bytes.NewReader(hs[:]))
	if err != nil || v != ProtocolVersion {
		t.Fatalf("readHandshake = (%d, %v)", v, err)
	}
	if _, err := readHandshake(bytes.NewReader([]byte("NOPE0000"))); !errors.Is(err, errNotWirePeer) {
		t.Fatalf("bad magic: err = %v", err)
	}
	if _, err := readHandshake(bytes.NewReader([]byte{'T', 'C'})); err == nil {
		t.Fatal("short handshake accepted")
	}
}
