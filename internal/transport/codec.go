package transport

// The wire codec: protocol version 2, a hand-written length-prefixed
// binary framing that replaced the gob streams of version 1.
//
// Connections open with an 8-byte handshake in each direction —
//
//	[4] magic "TCWP"   [1] protocol version   [3] reserved (zero)
//
// — client first, then the server's reply; a version mismatch is
// detected before any frame is exchanged and surfaces as a descriptive
// error on both sides.
//
// After the handshake the stream is a sequence of frames:
//
//	[2] frame magic 0xA9 0x7C
//	[1] frame type (1 = request, 2 = response, 3 = invalidation batch)
//	[1] reserved (zero)
//	[8] request id (big endian; 0 on invalidation batches)
//	[4] payload length (big endian)
//	[…] payload
//
// The request id correlates responses with requests, which is what lets
// a client multiplex many in-flight calls over one connection. The
// per-frame magic lets a reader that finds itself mid-garbage (a stale
// or half-open connection, a peer that died mid-write) scan forward to
// the next frame boundary and resynchronize instead of discarding the
// connection wholesale — something the self-describing gob stream could
// never do.
//
// Payloads are encoded with hand-written append-style encoders: varint
// lengths, no reflection, no per-message type information. Encoders
// append into sync.Pool-ed buffers that are recycled after the write;
// decoders alias byte-slice fields ([]byte values) directly into the
// frame's payload buffer (freshly allocated per frame, never pooled),
// so a decoded Response costs one payload allocation plus the slice
// headers instead of a reflective deep copy.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"unsafe"

	"tcache/internal/kv"
	"tcache/internal/wal"
)

// ProtocolVersion is the wire protocol spoken by this build. Version 1
// was the gob framing; version 2 introduced the binary codec in this
// file; version 3 added the MinVersion read floor to requests (the
// cluster tier's read-your-invalidations guard); version 4 added the
// validated-update fields (ReadVersions on requests, the conflict
// detail on responses) that carry the unified optimistic write path;
// version 5 added DB-tier replication — the OpReplicate/OpPromote
// operations, the role/health/leader response fields, the
// CodeNotPrimary redirect, and the replication stream's snapshot,
// record, and ack frame types — same framing each time, negotiated
// exactly like v2/v3/v4.
const ProtocolVersion = 5

// handshakeMagic opens every connection, in both directions.
var handshakeMagic = [4]byte{'T', 'C', 'W', 'P'}

const handshakeSize = 8

// Frame layout constants.
const (
	frameMagic0     = 0xA9
	frameMagic1     = 0x7C
	frameHeaderSize = 16

	frameRequest       = 1
	frameResponse      = 2
	frameInvalidations = 3

	// Replication stream frames (protocol v5). After an accepted
	// OpReplicate, the primary pushes frameReplSnapshot frames (a batch
	// of state entries; a zero-count frame terminates the image and
	// carries the log cut to tail from) and then frameReplRecords frames
	// (a contiguous run of committed WAL records stamped with its start
	// and end positions); the standby sends frameReplAck frames back on
	// the same connection.
	frameReplSnapshot = 4
	frameReplRecords  = 5
	frameReplAck      = 6

	// maxFramePayload bounds a frame's payload so a corrupt or hostile
	// length field cannot trigger a giant allocation. Writers enforce it
	// too: an oversized frame must never reach the wire, because the
	// peer's reader would reject its (valid) header as garbage and lose
	// the stream position — and a payload over 4 GiB would silently
	// truncate the uint32 length field.
	maxFramePayload = 64 << 20
)

// ErrFrameTooLarge reports a message whose encoding exceeds
// maxFramePayload; it is surfaced to the caller instead of being
// written, keeping the stream framed.
var ErrFrameTooLarge = errors.New("transport: frame exceeds maximum payload size")

// Errors surfaced by the codec.
var (
	// ErrTruncatedFrame reports a payload that ended mid-field.
	ErrTruncatedFrame = errors.New("transport: truncated frame payload")
	// errNotWirePeer reports a peer that did not present the handshake
	// magic (e.g. a version-1 gob client, or something else entirely).
	errNotWirePeer = errors.New("transport: peer did not present the tcache wire handshake")
)

// VersionMismatchError reports a peer speaking a different protocol
// version; both versions are carried so operators can tell which side is
// stale.
type VersionMismatchError struct {
	Local, Peer byte
}

func (e *VersionMismatchError) Error() string {
	return fmt.Sprintf("transport: protocol version mismatch: local speaks v%d, peer speaks v%d", e.Local, e.Peer)
}

// --- Handshake ----------------------------------------------------------

func handshakeBytes() [handshakeSize]byte {
	var b [handshakeSize]byte
	copy(b[:4], handshakeMagic[:])
	b[4] = ProtocolVersion
	return b
}

// readHandshake consumes and validates one handshake, returning the
// peer's protocol version.
func readHandshake(r io.Reader) (byte, error) {
	var b [handshakeSize]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("transport: read handshake: %w", err)
	}
	if [4]byte(b[:4]) != handshakeMagic {
		return 0, errNotWirePeer
	}
	return b[4], nil
}

// clientHandshake runs the client side: send ours, read the server's,
// reject a version mismatch.
func clientHandshake(c net.Conn, r io.Reader) error {
	hs := handshakeBytes()
	if _, err := c.Write(hs[:]); err != nil {
		return fmt.Errorf("transport: write handshake: %w", err)
	}
	peer, err := readHandshake(r)
	if err != nil {
		return err
	}
	if peer != ProtocolVersion {
		return &VersionMismatchError{Local: ProtocolVersion, Peer: peer}
	}
	return nil
}

// serverHandshake runs the server side: read the client's, always reply
// with ours (so a mismatched client learns both versions), then reject a
// mismatch.
func serverHandshake(c net.Conn, r io.Reader) error {
	peer, err := readHandshake(r)
	if err != nil {
		return err
	}
	hs := handshakeBytes()
	if _, err := c.Write(hs[:]); err != nil {
		return fmt.Errorf("transport: write handshake: %w", err)
	}
	if peer != ProtocolVersion {
		return &VersionMismatchError{Local: ProtocolVersion, Peer: peer}
	}
	return nil
}

// --- Frame buffers ------------------------------------------------------

// framePool recycles encode buffers on the hot path. Buffers that grew
// beyond maxPooledBuf are dropped instead of pinned forever.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

const maxPooledBuf = 1 << 20

func getFrameBuf() *[]byte { return framePool.Get().(*[]byte) }

func putFrameBuf(b *[]byte) {
	if cap(*b) > maxPooledBuf {
		return
	}
	*b = (*b)[:0]
	framePool.Put(b)
}

// beginFrame appends a frame header with a length placeholder; finishFrame
// patches the length once the payload is appended.
func beginFrame(b []byte, typ byte, id uint64) []byte {
	b = append(b, frameMagic0, frameMagic1, typ, 0)
	b = binary.BigEndian.AppendUint64(b, id)
	b = binary.BigEndian.AppendUint32(b, 0)
	return b
}

func finishFrame(b []byte) []byte {
	binary.BigEndian.PutUint32(b[frameHeaderSize-4:frameHeaderSize], uint32(len(b)-frameHeaderSize))
	return b
}

// --- Frame reading with boundary resync ---------------------------------

// frameReader reads frames off a connection. When the stream position is
// not a frame boundary (garbage from a half-open peer, a partial write
// from a dead one) it scans forward byte by byte for the next plausible
// frame header instead of giving up on the connection.
type frameReader struct {
	r    io.Reader
	hdr  [frameHeaderSize]byte
	logf func(format string, args ...any)
	// Resyncs counts the times the reader had to scan for a boundary.
	Resyncs int
}

func newFrameReader(r io.Reader, logf func(string, ...any)) *frameReader {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &frameReader{r: r, logf: logf}
}

// headerValid reports whether fr.hdr is a plausible frame header.
func (fr *frameReader) headerValid() bool {
	if fr.hdr[0] != frameMagic0 || fr.hdr[1] != frameMagic1 || fr.hdr[3] != 0 {
		return false
	}
	switch fr.hdr[2] {
	case frameRequest, frameResponse, frameInvalidations,
		frameReplSnapshot, frameReplRecords, frameReplAck:
	default:
		return false
	}
	return binary.BigEndian.Uint32(fr.hdr[12:16]) <= maxFramePayload
}

// Read returns the next frame. The payload is freshly allocated per
// frame (decoders alias into it), so it is valid indefinitely.
func (fr *frameReader) Read() (typ byte, id uint64, payload []byte, err error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	if !fr.headerValid() {
		// Not at a frame boundary: slide a one-byte window until a
		// plausible header lines up. A false positive inside payload-like
		// garbage decodes to a malformed message downstream and is
		// rejected there; the scan itself never allocates.
		fr.Resyncs++
		skipped := 0
		one := make([]byte, 1)
		for {
			copy(fr.hdr[:], fr.hdr[1:])
			if _, err := io.ReadFull(fr.r, one); err != nil {
				return 0, 0, nil, err
			}
			fr.hdr[frameHeaderSize-1] = one[0]
			skipped++
			if fr.headerValid() {
				break
			}
		}
		fr.logf("transport: stream resynced to frame boundary (skipped %d bytes)", skipped)
	}
	typ = fr.hdr[2]
	id = binary.BigEndian.Uint64(fr.hdr[4:12])
	n := int(binary.BigEndian.Uint32(fr.hdr[12:16]))
	if n > 0 {
		payload = make([]byte, n)
		if _, err := io.ReadFull(fr.r, payload); err != nil {
			return 0, 0, nil, err
		}
	}
	return typ, id, payload, nil
}

// --- Primitive encoders -------------------------------------------------
//
// Byte slices and element counts use a nil-aware scheme — 0 encodes nil,
// n+1 encodes length n — so decode(encode(x)) reproduces x exactly,
// including the nil/empty distinction (the fuzz round-trip relies on it).

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytesNil(b, p []byte) []byte {
	if p == nil {
		return binary.AppendUvarint(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(p))+1)
	return append(b, p...)
}

// appendCountNil writes the nil-aware element count for a slice of length
// n (negative means nil).
func appendCountNil(b []byte, n int) []byte {
	if n < 0 {
		return binary.AppendUvarint(b, 0)
	}
	return binary.AppendUvarint(b, uint64(n)+1)
}

func appendVersion(b []byte, v kv.Version) []byte {
	b = binary.AppendUvarint(b, v.Counter)
	return binary.AppendUvarint(b, uint64(v.Node))
}

// appendPos encodes a WAL position (segment sequence + byte offset).
// Offsets are never negative, so the uvarint encoding is exact.
func appendPos(b []byte, p wal.Pos) []byte {
	b = binary.AppendUvarint(b, p.Seq)
	return binary.AppendUvarint(b, uint64(p.Off))
}

func appendDepList(b []byte, l kv.DepList) []byte {
	if l == nil {
		return appendCountNil(b, -1)
	}
	b = appendCountNil(b, len(l))
	for _, e := range l {
		b = appendString(b, string(e.Key))
		b = appendVersion(b, e.Version)
	}
	return b
}

func appendItem(b []byte, it kv.Item) []byte {
	b = appendBytesNil(b, it.Value)
	b = appendVersion(b, it.Version)
	return appendDepList(b, it.Deps)
}

func appendKeySlice(b []byte, keys []kv.Key) []byte {
	if keys == nil {
		return appendCountNil(b, -1)
	}
	b = appendCountNil(b, len(keys))
	for _, k := range keys {
		b = appendString(b, string(k))
	}
	return b
}

func appendKeyValues(b []byte, kvs []KeyValue) []byte {
	if kvs == nil {
		return appendCountNil(b, -1)
	}
	b = appendCountNil(b, len(kvs))
	for _, w := range kvs {
		b = appendString(b, string(w.Key))
		b = appendBytesNil(b, w.Value)
	}
	return b
}

func appendObservedReads(b []byte, rs []ObservedRead) []byte {
	if rs == nil {
		return appendCountNil(b, -1)
	}
	b = appendCountNil(b, len(rs))
	for _, r := range rs {
		b = appendString(b, string(r.Key))
		b = appendVersion(b, r.Version)
		b = appendBool(b, r.Found)
	}
	return b
}

func appendValues(b []byte, vals []kv.Value) []byte {
	if vals == nil {
		return appendCountNil(b, -1)
	}
	b = appendCountNil(b, len(vals))
	for _, v := range vals {
		b = appendBytesNil(b, v)
	}
	return b
}

func appendLookups(b []byte, ls []kv.Lookup) []byte {
	if ls == nil {
		return appendCountNil(b, -1)
	}
	b = appendCountNil(b, len(ls))
	for _, l := range ls {
		b = appendItem(b, l.Item)
		b = appendBool(b, l.Found)
	}
	return b
}

func appendStats(b []byte, m map[string]uint64) []byte {
	if m == nil {
		return appendCountNil(b, -1)
	}
	b = appendCountNil(b, len(m))
	for k, v := range m {
		b = appendString(b, k)
		b = binary.AppendUvarint(b, v)
	}
	return b
}

// --- Message encoders ---------------------------------------------------

func appendRequest(b []byte, req *Request) []byte {
	b = appendString(b, string(req.Op))
	b = appendString(b, string(req.Key))
	b = binary.AppendUvarint(b, req.TxnID)
	b = appendBool(b, req.LastOp)
	b = appendKeySlice(b, req.Keys)
	b = appendString(b, req.Subscriber)
	b = appendKeySlice(b, req.Reads)
	b = appendKeyValues(b, req.Writes)
	b = appendVersion(b, req.MinVersion)
	b = appendObservedReads(b, req.ReadVersions)
	return appendPos(b, req.ReplFrom)
}

func appendResponse(b []byte, resp *Response) []byte {
	b = binary.AppendUvarint(b, uint64(resp.Code))
	b = appendString(b, resp.Err)
	b = appendBytesNil(b, resp.Value)
	b = appendBool(b, resp.Found)
	b = appendItem(b, resp.Item)
	b = appendVersion(b, resp.Version)
	b = appendLookups(b, resp.Batch)
	b = appendValues(b, resp.Values)
	b = appendStats(b, resp.Stats)
	b = appendString(b, string(resp.ConflictKey))
	b = appendVersion(b, resp.ConflictVersion)
	b = appendBool(b, resp.ConflictFound)
	b = appendString(b, resp.Role)
	b = appendString(b, resp.Leader)
	b = appendBool(b, resp.Healthy)
	b = appendString(b, resp.HealthErr)
	b = binary.AppendUvarint(b, resp.ReplLag)
	b = binary.AppendUvarint(b, resp.ReplCounter)
	b = appendBool(b, resp.ReplSnapshot)
	return appendPos(b, resp.ReplPos)
}

func appendInvalidations(b []byte, invs []Invalidation) []byte {
	b = binary.AppendUvarint(b, uint64(len(invs)))
	for _, inv := range invs {
		b = appendString(b, string(inv.Key))
		b = appendVersion(b, inv.Version)
	}
	return b
}

// --- Decoder ------------------------------------------------------------

// payloadDecoder walks one frame payload. Every accessor bounds-checks
// and returns ErrTruncatedFrame instead of panicking; element counts are
// validated against the remaining payload before any allocation, so an
// adversarial count cannot force a huge allocation.
type payloadDecoder struct {
	b   []byte
	off int
}

func (d *payloadDecoder) remaining() int { return len(d.b) - d.off }

func (d *payloadDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, ErrTruncatedFrame
	}
	d.off += n
	return v, nil
}

func (d *payloadDecoder) bool() (bool, error) {
	if d.remaining() < 1 {
		return false, ErrTruncatedFrame
	}
	v := d.b[d.off] != 0
	d.off++
	return v, nil
}

// take returns n payload bytes, aliasing the payload buffer (zero copy).
func (d *payloadDecoder) take(n int) ([]byte, error) {
	if n < 0 || d.remaining() < n {
		return nil, ErrTruncatedFrame
	}
	p := d.b[d.off : d.off+n : d.off+n]
	d.off += n
	return p, nil
}

func (d *payloadDecoder) string() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	p, err := d.take(int(n))
	if err != nil {
		return "", err
	}
	return string(p), nil
}

// stringShared decodes a string whose bytes alias the payload buffer
// (zero copy, like take). Safe because payload buffers are allocated per
// frame and never written after decoding; the string pins the payload
// for as long as it lives, so it is used only where the win is real —
// the dependency-list keys of response items, the dominant string volume
// on the read path.
func (d *payloadDecoder) stringShared() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	p, err := d.take(int(n))
	if err != nil {
		return "", err
	}
	if len(p) == 0 {
		return "", nil
	}
	return unsafe.String(&p[0], len(p)), nil
}

func (d *payloadDecoder) bytesNil() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	return d.take(int(n) - 1)
}

// countNil decodes a nil-aware element count, validating it against the
// remaining payload at minBytes per element. Returns -1 for nil.
func (d *payloadDecoder) countNil(minBytes int) (int, error) {
	c, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if c == 0 {
		return -1, nil
	}
	n := int(c - 1)
	// Divide instead of multiplying: a hostile count near 2^64 would
	// overflow n*minBytes and slip past the guard.
	if n < 0 || n > d.remaining()/minBytes {
		return 0, ErrTruncatedFrame
	}
	return n, nil
}

func (d *payloadDecoder) version() (kv.Version, error) {
	c, err := d.uvarint()
	if err != nil {
		return kv.Version{}, err
	}
	node, err := d.uvarint()
	if err != nil {
		return kv.Version{}, err
	}
	return kv.Version{Counter: c, Node: uint32(node)}, nil
}

func (d *payloadDecoder) pos() (wal.Pos, error) {
	seq, err := d.uvarint()
	if err != nil {
		return wal.Pos{}, err
	}
	off, err := d.uvarint()
	if err != nil {
		return wal.Pos{}, err
	}
	return wal.Pos{Seq: seq, Off: int64(off)}, nil
}

func (d *payloadDecoder) depList() (kv.DepList, error) {
	n, err := d.countNil(3) // key len + 2 version varints
	if err != nil || n < 0 {
		return nil, err
	}
	l := make(kv.DepList, n)
	for i := range l {
		s, err := d.stringShared()
		if err != nil {
			return nil, err
		}
		v, err := d.version()
		if err != nil {
			return nil, err
		}
		l[i] = kv.DepEntry{Key: kv.Key(s), Version: v}
	}
	return l, nil
}

func (d *payloadDecoder) item() (kv.Item, error) {
	val, err := d.bytesNil()
	if err != nil {
		return kv.Item{}, err
	}
	v, err := d.version()
	if err != nil {
		return kv.Item{}, err
	}
	deps, err := d.depList()
	if err != nil {
		return kv.Item{}, err
	}
	return kv.Item{Value: val, Version: v, Deps: deps}, nil
}

func (d *payloadDecoder) keySlice() ([]kv.Key, error) {
	n, err := d.countNil(1)
	if err != nil || n < 0 {
		return nil, err
	}
	keys := make([]kv.Key, n)
	for i := range keys {
		s, err := d.string()
		if err != nil {
			return nil, err
		}
		keys[i] = kv.Key(s)
	}
	return keys, nil
}

func (d *payloadDecoder) keyValues() ([]KeyValue, error) {
	n, err := d.countNil(2)
	if err != nil || n < 0 {
		return nil, err
	}
	kvs := make([]KeyValue, n)
	for i := range kvs {
		s, err := d.string()
		if err != nil {
			return nil, err
		}
		val, err := d.bytesNil()
		if err != nil {
			return nil, err
		}
		kvs[i] = KeyValue{Key: kv.Key(s), Value: val}
	}
	return kvs, nil
}

func (d *payloadDecoder) observedReads() ([]ObservedRead, error) {
	n, err := d.countNil(4) // key len + 2 version varints + found bool
	if err != nil || n < 0 {
		return nil, err
	}
	rs := make([]ObservedRead, n)
	for i := range rs {
		s, err := d.string()
		if err != nil {
			return nil, err
		}
		v, err := d.version()
		if err != nil {
			return nil, err
		}
		found, err := d.bool()
		if err != nil {
			return nil, err
		}
		rs[i] = ObservedRead{Key: kv.Key(s), Version: v, Found: found}
	}
	return rs, nil
}

func (d *payloadDecoder) values() ([]kv.Value, error) {
	n, err := d.countNil(1)
	if err != nil || n < 0 {
		return nil, err
	}
	vals := make([]kv.Value, n)
	for i := range vals {
		v, err := d.bytesNil()
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return vals, nil
}

func (d *payloadDecoder) lookups() ([]kv.Lookup, error) {
	n, err := d.countNil(4)
	if err != nil || n < 0 {
		return nil, err
	}
	ls := make([]kv.Lookup, n)
	for i := range ls {
		it, err := d.item()
		if err != nil {
			return nil, err
		}
		found, err := d.bool()
		if err != nil {
			return nil, err
		}
		ls[i] = kv.Lookup{Item: it, Found: found}
	}
	return ls, nil
}

func (d *payloadDecoder) stats() (map[string]uint64, error) {
	n, err := d.countNil(2)
	if err != nil || n < 0 {
		return nil, err
	}
	m := make(map[string]uint64, n)
	for i := 0; i < n; i++ {
		k, err := d.string()
		if err != nil {
			return nil, err
		}
		v, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		m[k] = v
	}
	return m, nil
}

// --- Message decoders ---------------------------------------------------

func decodeRequest(payload []byte) (Request, error) {
	d := payloadDecoder{b: payload}
	var req Request
	var err error
	var s string
	if s, err = d.string(); err != nil {
		return req, err
	}
	req.Op = Op(s)
	if s, err = d.string(); err != nil {
		return req, err
	}
	req.Key = kv.Key(s)
	if req.TxnID, err = d.uvarint(); err != nil {
		return req, err
	}
	if req.LastOp, err = d.bool(); err != nil {
		return req, err
	}
	if req.Keys, err = d.keySlice(); err != nil {
		return req, err
	}
	if req.Subscriber, err = d.string(); err != nil {
		return req, err
	}
	if req.Reads, err = d.keySlice(); err != nil {
		return req, err
	}
	if req.Writes, err = d.keyValues(); err != nil {
		return req, err
	}
	if req.MinVersion, err = d.version(); err != nil {
		return req, err
	}
	if req.ReadVersions, err = d.observedReads(); err != nil {
		return req, err
	}
	if req.ReplFrom, err = d.pos(); err != nil {
		return req, err
	}
	return req, nil
}

func decodeResponse(payload []byte) (Response, error) {
	d := payloadDecoder{b: payload}
	var resp Response
	var err error
	var code uint64
	if code, err = d.uvarint(); err != nil {
		return resp, err
	}
	resp.Code = Code(int(code))
	if resp.Err, err = d.string(); err != nil {
		return resp, err
	}
	if resp.Value, err = d.bytesNil(); err != nil {
		return resp, err
	}
	if resp.Found, err = d.bool(); err != nil {
		return resp, err
	}
	if resp.Item, err = d.item(); err != nil {
		return resp, err
	}
	if resp.Version, err = d.version(); err != nil {
		return resp, err
	}
	if resp.Batch, err = d.lookups(); err != nil {
		return resp, err
	}
	if resp.Values, err = d.values(); err != nil {
		return resp, err
	}
	if resp.Stats, err = d.stats(); err != nil {
		return resp, err
	}
	var ck string
	if ck, err = d.string(); err != nil {
		return resp, err
	}
	resp.ConflictKey = kv.Key(ck)
	if resp.ConflictVersion, err = d.version(); err != nil {
		return resp, err
	}
	if resp.ConflictFound, err = d.bool(); err != nil {
		return resp, err
	}
	if resp.Role, err = d.string(); err != nil {
		return resp, err
	}
	if resp.Leader, err = d.string(); err != nil {
		return resp, err
	}
	if resp.Healthy, err = d.bool(); err != nil {
		return resp, err
	}
	if resp.HealthErr, err = d.string(); err != nil {
		return resp, err
	}
	if resp.ReplLag, err = d.uvarint(); err != nil {
		return resp, err
	}
	if resp.ReplCounter, err = d.uvarint(); err != nil {
		return resp, err
	}
	if resp.ReplSnapshot, err = d.bool(); err != nil {
		return resp, err
	}
	if resp.ReplPos, err = d.pos(); err != nil {
		return resp, err
	}
	return resp, nil
}

func decodeInvalidations(payload []byte) ([]Invalidation, error) {
	d := payloadDecoder{b: payload}
	c, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	n := int(c)
	if n < 0 || n > d.remaining()/3 {
		return nil, ErrTruncatedFrame
	}
	invs := make([]Invalidation, n)
	for i := range invs {
		s, err := d.string()
		if err != nil {
			return nil, err
		}
		v, err := d.version()
		if err != nil {
			return nil, err
		}
		invs[i] = Invalidation{Key: kv.Key(s), Version: v}
	}
	return invs, nil
}

// compactItem re-homes a decoded item into its own single backing buffer
// (value bytes plus dependency-key bytes, two allocations total). Items
// decoded from a batch frame alias the whole frame's payload; a cache
// that retains one item from a large batch would otherwise pin the
// entire frame until that entry is evicted. After compaction an item
// pins exactly its own bytes, while the read path keeps the zero-copy
// decode for everything transient.
func compactItem(it kv.Item) kv.Item {
	n := len(it.Value)
	for _, e := range it.Deps {
		n += len(e.Key)
	}
	var buf []byte
	if n > 0 || it.Value != nil {
		// make with cap 0 still yields a non-nil slice, preserving the
		// nil/empty distinction for empty values.
		buf = make([]byte, 0, n)
	}
	out := it
	if it.Value != nil {
		buf = append(buf, it.Value...)
		out.Value = kv.Value(buf[:len(it.Value):len(it.Value)])
	}
	if it.Deps != nil {
		deps := make(kv.DepList, len(it.Deps))
		off := len(buf)
		for i, e := range it.Deps {
			deps[i].Version = e.Version
			if len(e.Key) == 0 {
				continue
			}
			buf = append(buf, e.Key...)
			deps[i].Key = kv.Key(unsafe.String(&buf[off], len(e.Key)))
			off += len(e.Key)
		}
		out.Deps = deps
	}
	return out
}

// --- Frame write helpers ------------------------------------------------

// writeFrame encodes one message into a pooled buffer and writes it as a
// single frame. mu, if non-nil, serializes writes on the connection.
func writeFrame(w io.Writer, mu *sync.Mutex, typ byte, id uint64, encode func([]byte) []byte) error {
	buf := getFrameBuf()
	b := beginFrame((*buf)[:0], typ, id)
	b = encode(b)
	if len(b)-frameHeaderSize > maxFramePayload {
		*buf = b
		putFrameBuf(buf)
		return ErrFrameTooLarge
	}
	b = finishFrame(b)
	*buf = b
	if mu != nil {
		mu.Lock()
	}
	_, err := w.Write(b)
	if mu != nil {
		mu.Unlock()
	}
	putFrameBuf(buf)
	return err
}

func writeRequestFrame(w io.Writer, mu *sync.Mutex, id uint64, req *Request) error {
	return writeFrame(w, mu, frameRequest, id, func(b []byte) []byte { return appendRequest(b, req) })
}

func writeResponseFrame(w io.Writer, mu *sync.Mutex, id uint64, resp *Response) error {
	return writeFrame(w, mu, frameResponse, id, func(b []byte) []byte { return appendResponse(b, resp) })
}

func writeInvalidationFrame(w io.Writer, mu *sync.Mutex, invs []Invalidation) error {
	return writeFrame(w, mu, frameInvalidations, 0, func(b []byte) []byte { return appendInvalidations(b, invs) })
}
