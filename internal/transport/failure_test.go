package transport

import (
	"context"
	"errors"
	"testing"
	"time"

	"tcache/internal/core"
	"tcache/internal/db"
	"tcache/internal/kv"
)

// TestServerCloseAbortsBlockedUpdate drives an update into a lock wait
// held by an in-process transaction, then closes the server. Close must
// cancel the in-flight transaction (unblocking its lock wait) and return
// instead of hanging on wg.Wait.
func TestServerCloseAbortsBlockedUpdate(t *testing.T) {
	d := db.Open(db.Config{})
	t.Cleanup(func() { d.Close() })
	srv := NewDBServer(d, t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := DialDB(bg, addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)

	holder := d.Begin()
	if err := holder.Write("k", kv.Value("held")); err != nil {
		t.Fatal(err)
	}

	errc := make(chan error, 1)
	go func() {
		_, err := cli.Update(bg, nil, []KeyValue{{Key: "k", Value: kv.Value("blocked")}})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the update reach the lock queue

	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("DBServer.Close hung on the blocked update")
	}
	if err := <-errc; err == nil {
		t.Fatal("blocked update succeeded despite server close")
	}
	// The cancelled transaction released its (queued) locks: the holder
	// can still commit.
	if _, err := holder.Commit(); err != nil {
		t.Fatalf("holder commit after server close = %v", err)
	}
}

// TestClientCtxCancelledMidRoundTrip blocks an update behind a held lock
// and cancels the client context mid-round-trip. The call must return
// ctx.Err() promptly, and the client must transparently redial for the
// next call.
func TestClientCtxCancelledMidRoundTrip(t *testing.T) {
	d := db.Open(db.Config{})
	t.Cleanup(func() { d.Close() })
	srv := NewDBServer(d, t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	cli, err := DialDB(bg, addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)

	holder := d.Begin()
	if err := holder.Write("k", kv.Value("held")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := cli.Update(ctx, nil, []KeyValue{{Key: "k", Value: kv.Value("blocked")}})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled update = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled round trip never returned")
	}

	// The interrupted connection is discarded; the next call redials.
	if _, err := holder.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Update(bg, nil, []KeyValue{{Key: "k", Value: kv.Value("after")}}); err != nil {
		t.Fatalf("post-cancel update = %v", err)
	}
	item, ok, err := cli.ReadItem(bg, "k")
	if err != nil || !ok || string(item.Value) != "after" {
		t.Fatalf("ReadItem = %q, %v, %v", item.Value, ok, err)
	}
}

// TestClientCloseUnblocksStuckRoundTrip closes the client while a round
// trip with a background context is blocked server-side. Close must not
// wait for the exchange: it slams the socket, the blocked call errors
// out, and Close returns promptly.
func TestClientCloseUnblocksStuckRoundTrip(t *testing.T) {
	d := db.Open(db.Config{})
	t.Cleanup(func() { d.Close() })
	srv := NewDBServer(d, t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	cli, err := DialDB(bg, addr, 1)
	if err != nil {
		t.Fatal(err)
	}

	holder := d.Begin()
	if err := holder.Write("k", kv.Value("held")); err != nil {
		t.Fatal(err)
	}

	errc := make(chan error, 1)
	go func() {
		_, err := cli.Update(bg, nil, []KeyValue{{Key: "k", Value: kv.Value("blocked")}})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)

	closed := make(chan struct{})
	go func() {
		cli.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("DBClient.Close hung behind a blocked round trip")
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("blocked update succeeded after client close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked round trip never returned after Close")
	}
	if _, err := holder.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cli.ReadItem(bg, "k"); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("read on closed client = %v, want ErrClientClosed", err)
	}
}

// TestSubscriptionResubscribesAfterServerRestart bounces the DB server
// under an active subscription. The stream must reattach automatically,
// invalidations sent after the reconnect must reach the cache, and the
// eq.1/eq.2 protection must hold across the gap: updates whose
// invalidations were lost during the outage are still detected through
// dependency lists.
func TestSubscriptionResubscribesAfterServerRestart(t *testing.T) {
	d := db.Open(db.Config{DepBound: 5})
	t.Cleanup(func() { d.Close() })
	srv := NewDBServer(d, t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	cli, err := DialDB(bg, addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)
	cache, err := core.New(core.Config{Backend: cli, Strategy: core.StrategyAbort})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cache.Close)

	stop, err := SubscribeInvalidations(bg, addr, "edge-1", func(inv Invalidation) {
		cache.Invalidate(inv.Key, inv.Version)
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)

	seed := func(keys ...kv.Key) {
		t.Helper()
		writes := make([]KeyValue, len(keys))
		reads := make([]kv.Key, len(keys))
		for i, k := range keys {
			reads[i] = k
			writes[i] = KeyValue{Key: k, Value: kv.Value("v-" + string(k))}
		}
		if _, err := cli.Update(bg, reads, writes); err != nil {
			t.Fatal(err)
		}
	}
	seed("a")
	seed("b")
	for _, k := range []kv.Key{"a", "b"} {
		if _, err := cache.Get(bg, k); err != nil {
			t.Fatal(err)
		}
	}

	// Bounce the server: the subscription stream breaks.
	srv.Close()
	// Updates during the outage are impossible over the wire, but the DB
	// itself moves on: one transaction rewrites a and b; the cache hears
	// nothing (its subscription is down).
	txn := d.Begin()
	for _, k := range []kv.Key{"a", "b"} {
		if _, _, err := txn.Read(k); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range []kv.Key{"a", "b"} {
		if err := txn.Write(k, kv.Value("torn-"+string(k))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same address; the subscription must reattach.
	srv2 := NewDBServer(d, t.Logf)
	var addr2 string
	for i := 0; ; i++ {
		addr2, err = srv2.Listen(addr)
		if err == nil {
			break
		}
		if i == 50 {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	_ = addr2
	t.Cleanup(srv2.Close)

	// Consistency across the gap (eq.2 over the wire): evict a so the
	// next transactional read fetches a fresh copy whose dependency list
	// exposes the stale cached b.
	cache.Invalidate("a", kv.Version{Counter: 1 << 40})
	if _, err := cache.Read(bg, 1, "a", false); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Read(bg, 1, "b", true); !errors.Is(err, core.ErrTxnAborted) {
		t.Fatalf("torn read across outage = %v, want ErrTxnAborted", err)
	}

	// Liveness after reconnect: a post-restart update's invalidation
	// reaches the cache and refreshes it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := cli.Update(bg, []kv.Key{"b"}, []KeyValue{{Key: "b", Value: kv.Value("fresh")}}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("update never succeeded after restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for {
		val, err := cache.Get(bg, "b")
		if err == nil && string(val) == "fresh" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("invalidation never arrived after resubscribe; b = %q (%v)", val, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestResubscribeNotLockedOutByStaleName simulates the half-open-peer
// case: after the stream breaks, the server still holds a registration
// under the subscription's name (here squatted directly in the db). The
// reconnect loop must not be rejected forever by that corpse — reconnect
// attempts use an epoch-suffixed name.
func TestResubscribeNotLockedOutByStaleName(t *testing.T) {
	d := db.Open(db.Config{})
	t.Cleanup(func() { d.Close() })
	srv := NewDBServer(d, t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	got := make(chan Invalidation, 16)
	stop, err := SubscribeInvalidations(bg, addr, "edge", func(inv Invalidation) { got <- inv })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)

	// Break the stream by bouncing the server, and squat the bare name so
	// a naive reconnect-with-same-name would be rejected forever.
	srv.Close()
	unsquat, err := d.Subscribe("edge", func(db.Invalidation) {})
	if err != nil {
		t.Fatal(err)
	}
	defer unsquat()

	srv2 := NewDBServer(d, t.Logf)
	for i := 0; ; i++ {
		if _, err = srv2.Listen(addr); err == nil {
			break
		}
		if i == 50 {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Cleanup(srv2.Close)

	// The resubscribed stream must deliver new invalidations.
	deadline := time.Now().Add(10 * time.Second)
	cli, err := DialDB(bg, addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)
	for {
		if _, err := cli.Update(bg, nil, []KeyValue{{Key: "k", Value: kv.Value("v")}}); err == nil {
			select {
			case inv := <-got:
				if inv.Key != "k" {
					t.Fatalf("invalidation for %q", inv.Key)
				}
				return
			case <-time.After(50 * time.Millisecond):
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("resubscribe locked out by stale same-name registration")
		}
	}
}

// TestDuplicateSubscriberRejectedOverWire exercises the db layer's
// duplicate-name protection end to end.
func TestDuplicateSubscriberRejectedOverWire(t *testing.T) {
	d := db.Open(db.Config{})
	t.Cleanup(func() { d.Close() })
	srv := NewDBServer(d, t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	stop, err := SubscribeInvalidations(bg, addr, "edge", func(Invalidation) {})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if _, err := SubscribeInvalidations(bg, addr, "edge", func(Invalidation) {}); err == nil {
		t.Fatal("duplicate subscriber name accepted over the wire")
	}
}

// TestBatchReadsOverWire covers OpGetBatch (DBClient.ReadItems) and
// OpReadMulti (CacheClient.ReadMulti): N keys, one round trip each.
func TestBatchReadsOverWire(t *testing.T) {
	s := newStack(t, core.StrategyRetry)
	keys := []kv.Key{"b1", "b2", "b3"}
	for _, k := range keys {
		if _, err := s.dbCli.Update(bg, nil, []KeyValue{{Key: k, Value: kv.Value("v-" + string(k))}}); err != nil {
			t.Fatal(err)
		}
	}

	lookups, err := s.dbCli.ReadItems(bg, append(keys, "ghost"))
	if err != nil {
		t.Fatal(err)
	}
	if len(lookups) != 4 || !lookups[0].Found || lookups[3].Found {
		t.Fatalf("lookups = %+v", lookups)
	}
	if string(lookups[1].Item.Value) != "v-b2" {
		t.Fatalf("lookups[1] = %q", lookups[1].Item.Value)
	}

	id := s.cli.NewTxnID()
	vals, err := s.cli.ReadMulti(bg, id, keys, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || string(vals[2]) != "v-b3" {
		t.Fatalf("ReadMulti = %q", vals)
	}
	if _, err := s.cli.ReadMulti(bg, s.cli.NewTxnID(), []kv.Key{"ghost"}, true); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ReadMulti(ghost) = %v, want ErrNotFound", err)
	}
}
