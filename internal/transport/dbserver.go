package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"tcache/internal/db"
	"tcache/internal/kv"
)

// DBServer serves a db.DB over TCP.
type DBServer struct {
	db *db.DB
	ln net.Listener

	// ctx is cancelled by Close; it bounds every in-flight update
	// transaction, so a blocked lock wait cannot outlive the server (or
	// wedge Close's wg.Wait).
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	logf func(format string, args ...any)
}

// NewDBServer wraps d; call Serve to start accepting.
func NewDBServer(d *db.DB, logf func(string, ...any)) *DBServer {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &DBServer{db: d, ctx: ctx, cancel: cancel, conns: make(map[net.Conn]struct{}), logf: logf}
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts serving in the
// background. It returns the bound address.
func (s *DBServer) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop()
	}()
	return ln.Addr().String(), nil
}

// Close stops accepting, cancels in-flight transactions, and closes every
// connection; it blocks until the handler goroutines exit.
func (s *DBServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}

func (s *DBServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *DBServer) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

func (s *DBServer) handle(conn net.Conn) {
	// ctx dies with this connection (and with the whole server), aborting
	// any update transaction the peer abandoned mid-flight.
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()
	defer s.dropConn(conn)
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var encMu sync.Mutex // shared with the invalidation pusher

	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("tdbd: decode: %v", err)
			}
			return
		}
		if req.Op == OpSubscribe {
			// Switch to push mode: the ack is the last request/response
			// exchange on this connection.
			unsub, err := s.subscribe(conn, enc, &encMu, req.Subscriber)
			if err != nil {
				encMu.Lock()
				encErr := enc.Encode(Response{Code: CodeError, Err: err.Error()})
				encMu.Unlock()
				if encErr != nil {
					return
				}
				continue
			}
			encMu.Lock()
			err = enc.Encode(Response{Code: CodeOK})
			encMu.Unlock()
			if err != nil {
				unsub()
				return
			}
			// Block until the peer goes away; unsubscribing stops pushes.
			var discard Request
			for dec.Decode(&discard) == nil {
			}
			unsub()
			return
		}
		resp := s.dispatch(ctx, req)
		encMu.Lock()
		err := enc.Encode(resp)
		encMu.Unlock()
		if err != nil {
			s.logf("tdbd: encode: %v", err)
			return
		}
	}
}

func (s *DBServer) subscribe(conn net.Conn, enc *gob.Encoder, encMu *sync.Mutex, name string) (unsub func(), err error) {
	if name == "" {
		name = conn.RemoteAddr().String()
	}
	return s.db.Subscribe(name, func(inv db.Invalidation) {
		encMu.Lock()
		defer encMu.Unlock()
		if err := enc.Encode(Invalidation{Key: inv.Key, Version: inv.Version}); err != nil {
			// The pipeline is asynchronous and unreliable by design;
			// failures just drop this subscriber's messages.
			conn.Close()
		}
	})
}

func (s *DBServer) dispatch(ctx context.Context, req Request) Response {
	switch req.Op {
	case OpPing:
		return Response{Code: CodeOK}

	case OpGet:
		item, ok := s.db.Get(req.Key)
		if !ok {
			return Response{Code: CodeNotFound}
		}
		return Response{Code: CodeOK, Item: item, Found: true, Value: item.Value}

	case OpGetBatch:
		lookups, err := s.db.ReadItems(ctx, req.Keys)
		if err != nil {
			return Response{Code: CodeError, Err: err.Error()}
		}
		return Response{Code: CodeOK, Batch: lookups}

	case OpUpdate:
		version, err := s.runUpdate(ctx, req)
		switch {
		case err == nil:
			return Response{Code: CodeOK, Version: version}
		case errors.Is(err, db.ErrConflict):
			return Response{Code: CodeConflict, Err: err.Error()}
		default:
			return Response{Code: CodeError, Err: err.Error()}
		}

	default:
		return Response{Code: CodeError, Err: fmt.Sprintf("tdbd: unknown op %q", req.Op)}
	}
}

func (s *DBServer) runUpdate(ctx context.Context, req Request) (kv.Version, error) {
	txn := s.db.BeginCtx(ctx)
	for _, k := range req.Reads {
		if _, _, err := txn.Read(k); err != nil {
			return kv.Version{}, err
		}
	}
	for _, w := range req.Writes {
		if err := txn.Write(w.Key, w.Value); err != nil {
			return kv.Version{}, err
		}
	}
	return txn.Commit()
}
