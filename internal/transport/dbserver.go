package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"tcache/internal/db"
	"tcache/internal/kv"
	"tcache/internal/telemetry"
)

// DBServer serves a db.DB over TCP.
type DBServer struct {
	db *db.DB
	ln net.Listener

	// ctx is cancelled by Close; it bounds every in-flight update
	// transaction, so a blocked lock wait cannot outlive the server (or
	// wedge Close's wg.Wait).
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// pushers tracks the live subscription streams so the telemetry
	// gauge can sum their queued-invalidation backlogs.
	pushMu  sync.Mutex
	pushers map[*invPusher]struct{}

	// reg, when set, replaces the legacy OpStats counter map with the
	// full registry snapshot (counters + gauges + histograms) in flat
	// wire encoding — protocol-v5 compatible: only more map keys.
	reg atomic.Pointer[telemetry.Registry]

	logf func(format string, args ...any)
}

// NewDBServer wraps d; call Serve to start accepting.
func NewDBServer(d *db.DB, logf func(string, ...any)) *DBServer {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	//lint:ignore ctxdiscipline the server ctx spans all connections and is cancelled by Close, not by any one caller
	ctx, cancel := context.WithCancel(context.Background())
	return &DBServer{db: d, ctx: ctx, cancel: cancel, conns: make(map[net.Conn]struct{}),
		pushers: make(map[*invPusher]struct{}), logf: logf}
}

// SetRegistry makes OpStats serve the full registry snapshot (flat
// encoding) instead of the legacy fixed counter map. Call it before
// Listen; the registry should already aggregate the database's metrics
// (db.RegisterMetrics) and this server's (RegisterMetrics).
func (s *DBServer) SetRegistry(reg *telemetry.Registry) { s.reg.Store(reg) }

// RegisterMetrics registers the server-local gauges: live subscription
// streams and their queued-invalidation backlog.
//
//tcache:metric
func (s *DBServer) RegisterMetrics(reg *telemetry.Registry) {
	reg.Gauge("subscribers", func() uint64 {
		s.pushMu.Lock()
		defer s.pushMu.Unlock()
		return uint64(len(s.pushers))
	})
	reg.Gauge("subscriber_queue", func() uint64 { return s.queuedInvalidations() })
}

// queuedInvalidations sums the invalidation backlog across every live
// subscription stream.
func (s *DBServer) queuedInvalidations() uint64 {
	s.pushMu.Lock()
	pushers := make([]*invPusher, 0, len(s.pushers))
	for p := range s.pushers {
		pushers = append(pushers, p)
	}
	s.pushMu.Unlock()
	var n uint64
	for _, p := range pushers {
		n += uint64(p.depth())
	}
	return n
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts serving in the
// background. It returns the bound address.
func (s *DBServer) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop()
	}()
	return ln.Addr().String(), nil
}

// Close stops accepting, cancels in-flight transactions, and closes every
// connection; it blocks until the handler goroutines exit.
func (s *DBServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}

func (s *DBServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *DBServer) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

// handle serves one connection: version handshake, then a stream of
// request frames, each dispatched on its own goroutine so a blocked
// update never head-of-line-blocks the reads multiplexed behind it on
// the same connection. Responses are written under writeMu, tagged with
// the request id they answer.
func (s *DBServer) handle(conn net.Conn) {
	// ctx dies with this connection (and with the whole server), aborting
	// any update transaction the peer abandoned mid-flight. Defer order
	// (LIFO): cancel in-flight work, close the connection — so a dispatch
	// goroutine stuck writing to a peer that stopped reading errors out
	// instead of wedging the wait — then wait for the dispatchers.
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	defer s.dropConn(conn)
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()

	br := bufio.NewReader(conn)
	if err := serverHandshake(conn, br); err != nil {
		if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
			s.logf("tdbd: handshake: %v", err)
		}
		return
	}
	fr := newFrameReader(br, s.logf)
	var writeMu sync.Mutex

	for {
		typ, id, payload, err := fr.Read()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("tdbd: read: %v", err)
			}
			return
		}
		if typ != frameRequest {
			continue
		}
		req, derr := decodeRequest(payload)
		if derr != nil {
			// The frame boundary is intact, so the stream is still good:
			// answer this id with an error instead of dropping the conn.
			s.logf("tdbd: decode: %v", derr)
			resp := Response{Code: CodeError, Err: derr.Error()}
			if writeResponseFrame(conn, &writeMu, id, &resp) != nil {
				return
			}
			continue
		}
		if req.Op == OpSubscribe {
			// Switch to push mode: the ack is the last response on this
			// connection; from here on the server pushes invalidation
			// batches and ignores anything else the peer sends.
			s.servePush(conn, fr, &writeMu, id, req.Subscriber)
			return
		}
		if req.Op == OpReplicate {
			// Switch to replication-stream mode (protocol v5): the mode
			// response is the last request/response exchange; from here on
			// the server pushes snapshot and record frames and reads only
			// ack frames.
			s.serveReplication(ctx, conn, fr, &writeMu, id, req)
			return
		}
		if nonBlocking(req.Op) {
			// Lock-free reads answer inline: no goroutine hop, and they
			// cannot head-of-line-block the connection.
			resp := s.dispatch(ctx, req)
			if err := writeResponseFrame(conn, &writeMu, id, &resp); err != nil {
				s.logf("tdbd: write: %v", err)
				return
			}
			continue
		}
		reqWG.Add(1)
		go func(id uint64, req Request) {
			defer reqWG.Done()
			resp := s.dispatch(ctx, req)
			if err := writeResponseFrame(conn, &writeMu, id, &resp); err != nil {
				s.logf("tdbd: write: %v", err)
				conn.Close() // unblock the frame reader
			}
		}(id, req)
	}
}

// nonBlocking reports whether op completes without waiting on locks or
// other transactions, so the serving loop may run it inline instead of
// paying for a dispatch goroutine. OpUpdate can block on lock queues and
// must always run concurrently with the reader.
func nonBlocking(op Op) bool {
	switch op {
	case OpGet, OpGetBatch, OpPing, OpStats:
		return true
	default:
		return false
	}
}

// servePush turns the connection into an invalidation stream for
// subscriber name: invalidations emitted by the database are queued and
// flushed by a pusher goroutine, coalescing everything that accumulated
// during one in-flight push into a single batched frame.
func (s *DBServer) servePush(conn net.Conn, fr *frameReader, writeMu *sync.Mutex, id uint64, name string) {
	if name == "" {
		name = conn.RemoteAddr().String()
	}
	p := newInvPusher(conn, writeMu)
	unsub, err := s.db.Subscribe(name, func(inv db.Invalidation) {
		p.push(Invalidation{Key: inv.Key, Version: inv.Version})
	})
	if err != nil {
		resp := Response{Code: CodeError, Err: err.Error()}
		_ = writeResponseFrame(conn, writeMu, id, &resp)
		return
	}
	s.pushMu.Lock()
	s.pushers[p] = struct{}{}
	s.pushMu.Unlock()
	go p.run()
	defer func() {
		unsub()
		p.stop()
		s.pushMu.Lock()
		delete(s.pushers, p)
		s.pushMu.Unlock()
	}()
	resp := Response{Code: CodeOK}
	if err := writeResponseFrame(conn, writeMu, id, &resp); err != nil {
		return
	}
	// Block until the peer goes away, discarding anything it sends.
	for {
		if _, _, _, err := fr.Read(); err != nil {
			return
		}
	}
}

// maxQueuedInvalidations bounds a subscriber's backlog. The pipeline is
// asynchronous and unreliable by design, so overflow drops the oldest
// queued invalidations rather than blocking the database's commit path.
const maxQueuedInvalidations = 1 << 16

// invPusher batches invalidations for one subscription connection: the
// database's sink appends under a mutex and nudges the pusher, which
// drains the whole backlog into one frame per write. Invalidations that
// arrive while a frame is being written are coalesced into the next one.
type invPusher struct {
	conn    net.Conn
	writeMu *sync.Mutex

	mu    sync.Mutex //tcache:lockclass invq
	queue []Invalidation

	wake chan struct{}
	done chan struct{}
}

func newInvPusher(conn net.Conn, writeMu *sync.Mutex) *invPusher {
	return &invPusher{conn: conn, writeMu: writeMu, wake: make(chan struct{}, 1), done: make(chan struct{})}
}

func (p *invPusher) push(inv Invalidation) {
	p.mu.Lock()
	if len(p.queue) >= maxQueuedInvalidations {
		p.queue = p.queue[1:]
	}
	p.queue = append(p.queue, inv)
	p.mu.Unlock()
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

func (p *invPusher) run() {
	for {
		select {
		case <-p.wake:
		case <-p.done:
			return
		}
		p.mu.Lock()
		batch := p.queue
		p.queue = nil
		p.mu.Unlock()
		if len(batch) == 0 {
			continue
		}
		// Chunk by encoded size: a backlog that built up behind a stalled
		// push could otherwise exceed the frame payload cap, and failing
		// the whole flush would flap the subscription forever.
		for len(batch) > 0 {
			n, size := 0, 0
			for n < len(batch) && size < maxInvalidationFrameBytes {
				size += len(batch[n].Key) + 24 // key bytes + varint/header slack
				n++
			}
			if err := writeInvalidationFrame(p.conn, p.writeMu, batch[:n]); err != nil {
				// Failures just drop this subscriber's messages; closing
				// the socket makes the serving loop notice and unsubscribe.
				p.conn.Close()
				return
			}
			batch = batch[n:]
		}
	}
}

// maxInvalidationFrameBytes bounds one coalesced invalidation frame,
// comfortably under maxFramePayload. It is a variable only so tests can
// lower it to exercise the chunking path cheaply.
var maxInvalidationFrameBytes = 1 << 20

func (p *invPusher) stop() { close(p.done) }

// depth returns the current queued-invalidation backlog.
func (p *invPusher) depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

func (s *DBServer) dispatch(ctx context.Context, req Request) Response {
	//tcache:exhaustive
	switch req.Op {
	case OpPing:
		// The v5 ping doubles as a health and role probe: a sick WAL or a
		// standby role surfaces here before a client commits anything.
		st := s.db.ReplStatusNow()
		return Response{
			Code:        CodeOK,
			Role:        st.Role.String(),
			Leader:      st.Leader,
			Healthy:     st.Healthy,
			HealthErr:   st.Err,
			ReplLag:     st.Lag,
			ReplCounter: st.Counter,
		}

	case OpPromote:
		counter, err := s.db.Promote()
		if err != nil {
			return Response{Code: CodeError, Err: err.Error()}
		}
		return Response{Code: CodeOK, Role: db.RolePrimary.String(), ReplCounter: counter}

	case OpGet:
		item, ok := s.db.Get(req.Key)
		if !ok {
			return Response{Code: CodeNotFound}
		}
		return Response{Code: CodeOK, Item: item, Found: true, Value: item.Value}

	case OpGetBatch:
		lookups, err := s.db.ReadItems(ctx, req.Keys)
		if err != nil {
			return Response{Code: CodeError, Err: err.Error()}
		}
		return Response{Code: CodeOK, Batch: lookups}

	case OpUpdate:
		version, err := s.runUpdate(ctx, req)
		return updateResponse(version, err)

	case OpStats:
		// With a registry attached, OpStats carries the whole snapshot —
		// histograms and gauges included — in the flat wire encoding. The
		// registry's counter names are a superset of the legacy map, so
		// old scrapers see the keys they always saw. Without one, the
		// legacy fixed map keeps lightweight embedders unchanged.
		if reg := s.reg.Load(); reg != nil {
			return Response{Code: CodeOK, Stats: telemetry.Flatten(reg.Snapshot())}
		}
		m := s.db.Metrics()
		return Response{Code: CodeOK, Stats: map[string]uint64{
			"txns_started":       m.TxnsStarted,
			"txns_committed":     m.TxnsCommitted,
			"txns_aborted":       m.TxnsAborted,
			"conflicts":          m.Conflicts,
			"txn_reads":          m.TxnReads,
			"txn_writes":         m.TxnWrites,
			"single_gets":        m.SingleGets,
			"invalidations_sent": m.InvalidationsSent,
		}}

	case OpSubscribe:
		// Subscriptions switch the connection into push mode before
		// dispatch (see handle); reaching here means a second OpSubscribe
		// arrived on an already-dispatched stream.
		return Response{Code: CodeError, Err: "tdbd: subscribe must be the first request on its connection"}

	case OpReplicate:
		// Replication switches the connection into stream mode before
		// dispatch (see handle), same as OpSubscribe.
		return Response{Code: CodeError, Err: "tdbd: replicate must be the first request on its connection"}

	case OpRead, OpReadMulti, OpCommit, OpAbort:
		// Cache-tier transaction ops: the database speaks validated
		// updates (OpUpdate with read versions), not the cache's
		// incremental read/commit protocol.
		return Response{Code: CodeError, Err: fmt.Sprintf("tdbd: op %q is a cache-tier operation", req.Op)}

	default:
		return Response{Code: CodeError, Err: fmt.Sprintf("tdbd: unknown op %q", req.Op)}
	}
}

func (s *DBServer) runUpdate(ctx context.Context, req Request) (kv.Version, error) {
	if req.ReadVersions != nil {
		// The validated (protocol v4) form: observed read versions are
		// re-checked under lock, then the writes commit atomically.
		return s.db.ValidatedUpdate(ctx, req.ReadVersions, req.Writes)
	}
	txn := s.db.BeginCtx(ctx)
	for _, k := range req.Reads {
		if _, _, err := txn.Read(k); err != nil {
			return kv.Version{}, err
		}
	}
	for _, w := range req.Writes {
		if err := txn.Write(w.Key, w.Value); err != nil {
			return kv.Version{}, err
		}
	}
	return txn.Commit()
}

// updateResponse maps an update outcome onto the wire, carrying the
// validation conflict detail (stale key + committed version) when there
// is one so optimistic clients can heal their caches before retrying.
func updateResponse(version kv.Version, err error) Response {
	switch {
	case err == nil:
		return Response{Code: CodeOK, Version: version}
	case errors.Is(err, db.ErrNotPrimary):
		resp := Response{Code: CodeNotPrimary, Err: err.Error()}
		var npe *db.NotPrimaryError
		if errors.As(err, &npe) {
			resp.Leader = npe.Leader
		}
		return resp
	case errors.Is(err, db.ErrConflict):
		resp := Response{Code: CodeConflict, Err: err.Error()}
		var ce *db.ConflictError
		if errors.As(err, &ce) {
			resp.ConflictKey, resp.ConflictVersion, resp.ConflictFound = ce.Key, ce.Current, ce.Found
		}
		return resp
	default:
		return Response{Code: CodeError, Err: err.Error()}
	}
}
