package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tcache/internal/core"
	"tcache/internal/db"
	"tcache/internal/kv"
)

// testStack spins up a full wire deployment on loopback: tdbd, a cache
// backed by a DBClient, invalidations bridged over TCP, and a tcached in
// front of the cache.
type testStack struct {
	db       *db.DB
	dbSrv    *DBServer
	dbAddr   string
	dbCli    *DBClient
	cache    *core.Cache
	cacheSrv *CacheServer
	cli      *CacheClient
}

// bg is the background context for calls that don't exercise cancellation.
var bg = context.Background()

func newStack(t *testing.T, strategy core.Strategy) *testStack {
	t.Helper()
	d := db.Open(db.Config{DepBound: 5})
	t.Cleanup(func() { d.Close() })

	dbSrv := NewDBServer(d, t.Logf)
	dbAddr, err := dbSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dbSrv.Close)

	dbCli, err := DialDB(bg, dbAddr, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dbCli.Close)

	cache, err := core.New(core.Config{Backend: dbCli, Strategy: strategy})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cache.Close)

	stop, err := SubscribeInvalidations(bg, dbAddr, "edge-1", func(inv Invalidation) {
		cache.Invalidate(inv.Key, inv.Version)
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)

	cacheSrv := NewCacheServer(cache, t.Logf)
	cacheAddr, err := cacheSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cacheSrv.Close)

	cli, err := DialCache(bg, cacheAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)

	return &testStack{
		db: d, dbSrv: dbSrv, dbAddr: dbAddr, dbCli: dbCli,
		cache: cache, cacheSrv: cacheSrv, cli: cli,
	}
}

func TestPingBothServers(t *testing.T) {
	s := newStack(t, core.StrategyAbort)
	if err := s.dbCli.Ping(bg); err != nil {
		t.Fatal(err)
	}
	if err := s.cli.Ping(bg); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateAndGetOverWire(t *testing.T) {
	s := newStack(t, core.StrategyAbort)
	v, err := s.dbCli.Update(bg, nil, []KeyValue{{Key: "k", Value: kv.Value("hello")}})
	if err != nil {
		t.Fatal(err)
	}
	if v.IsZero() {
		t.Fatal("zero commit version")
	}
	item, ok, err := s.dbCli.ReadItem(bg, "k")
	if err != nil || !ok || string(item.Value) != "hello" || item.Version != v {
		t.Fatalf("ReadItem = %+v, %v, %v", item, ok, err)
	}
	// Through the cache server too.
	val, err := s.cli.Get(bg, "k")
	if err != nil || string(val) != "hello" {
		t.Fatalf("cache Get = %q, %v", val, err)
	}
}

func TestGetMissOverWire(t *testing.T) {
	s := newStack(t, core.StrategyAbort)
	if _, ok, err := s.dbCli.ReadItem(bg, "ghost"); ok || err != nil {
		t.Fatalf("found a ghost (%v, %v)", ok, err)
	}
	if _, err := s.cli.Get(bg, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cache miss = %v", err)
	}
}

func TestInvalidationsFlowOverWire(t *testing.T) {
	s := newStack(t, core.StrategyAbort)
	if _, err := s.dbCli.Update(bg, nil, []KeyValue{{Key: "k", Value: kv.Value("v1")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.cli.Get(bg, "k"); err != nil { // cache k@v1
		t.Fatal(err)
	}
	if _, err := s.dbCli.Update(bg, nil, []KeyValue{{Key: "k", Value: kv.Value("v2")}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		val, err := s.cli.Get(bg, "k")
		if err == nil && string(val) == "v2" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("invalidation never propagated; still %q (%v)", val, err)
		}
		time.Sleep(time.Millisecond)
	}
}

// lossyStack is a wire deployment whose invalidation bridge was never
// connected: every invalidation is "lost", the harshest §IV condition.
func newLossyStack(t *testing.T, strategy core.Strategy) (*DBClient, *CacheClient) {
	t.Helper()
	d := db.Open(db.Config{DepBound: 5})
	t.Cleanup(func() { d.Close() })
	dbSrv := NewDBServer(d, t.Logf)
	dbAddr, err := dbSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dbSrv.Close)
	dbCli, err := DialDB(bg, dbAddr, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dbCli.Close)
	cache, err := core.New(core.Config{Backend: dbCli, Strategy: strategy})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cache.Close)
	cacheSrv := NewCacheServer(cache, t.Logf)
	cacheAddr, err := cacheSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cacheSrv.Close)
	cli, err := DialCache(bg, cacheAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)
	return dbCli, cli
}

func TestTransactionalReadDetectionOverWire(t *testing.T) {
	dbCli, cli := newLossyStack(t, core.StrategyAbort)
	seed := func(k kv.Key, v string) {
		t.Helper()
		if _, err := dbCli.Update(bg, nil, []KeyValue{{Key: k, Value: kv.Value(v)}}); err != nil {
			t.Fatal(err)
		}
	}
	seed("a", "a0")
	seed("b", "b0")
	if _, err := cli.Get(bg, "b"); err != nil { // cache b@v0; it will go stale
		t.Fatal(err)
	}
	// One update transaction rewrites both; no invalidations arrive.
	if _, err := dbCli.Update(bg, []kv.Key{"a", "b"}, []KeyValue{
		{Key: "a", Value: kv.Value("a1")},
		{Key: "b", Value: kv.Value("b1")},
	}); err != nil {
		t.Fatal(err)
	}

	id := cli.NewTxnID()
	if _, err := cli.Read(bg, id, "a", false); err != nil { // miss: fresh a + deps
		t.Fatal(err)
	}
	_, err := cli.Read(bg, id, "b", true) // stale cached b: must abort
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("wire read of torn snapshot = %v, want ErrAborted", err)
	}
}

func TestRetryHealsOverWire(t *testing.T) {
	dbCli, cli := newLossyStack(t, core.StrategyRetry)
	if _, err := dbCli.Update(bg, nil, []KeyValue{{Key: "b", Value: kv.Value("b0")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Get(bg, "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := dbCli.Update(bg, []kv.Key{"a", "b"}, []KeyValue{
		{Key: "a", Value: kv.Value("a1")},
		{Key: "b", Value: kv.Value("b1")},
	}); err != nil {
		t.Fatal(err)
	}
	id := cli.NewTxnID()
	if _, err := cli.Read(bg, id, "a", false); err != nil {
		t.Fatal(err)
	}
	val, err := cli.Read(bg, id, "b", true) // RETRY reads through to the DB
	if err != nil || string(val) != "b1" {
		t.Fatalf("wire RETRY = %q, %v", val, err)
	}
}

func TestCacheStatsOverWire(t *testing.T) {
	s := newStack(t, core.StrategyAbort)
	if _, err := s.dbCli.Update(bg, nil, []KeyValue{{Key: "k", Value: kv.Value("v")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.cli.Get(bg, "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.cli.Get(bg, "k"); err != nil {
		t.Fatal(err)
	}
	stats, err := s.cli.Stats(bg)
	if err != nil {
		t.Fatal(err)
	}
	if stats["hits"] != 1 || stats["misses"] != 1 {
		t.Fatalf("stats = %v", stats)
	}
}

func TestConflictSurfacesOverWire(t *testing.T) {
	s := newStack(t, core.StrategyAbort)
	// A held lock in-process forces the wire update into a lock conflict
	// path only on deadlock/timeout; instead exercise CodeError with an
	// update against a closed DB.
	s.db.Close()
	_, err := s.dbCli.Update(bg, nil, []KeyValue{{Key: "k", Value: kv.Value("v")}})
	if err == nil {
		t.Fatal("update against closed DB succeeded")
	}
}

func TestUnknownOpRejected(t *testing.T) {
	s := newStack(t, core.StrategyAbort)
	resp, err := s.cli.mx.roundTrip(bg, Request{Op: "bogus"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeError {
		t.Fatalf("code = %v", resp.Code)
	}
	resp, err = s.dbCli.mx.roundTrip(bg, Request{Op: "bogus"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeError {
		t.Fatalf("code = %v", resp.Code)
	}
}

func TestConcurrentWireClients(t *testing.T) {
	s := newStack(t, core.StrategyRetry)
	for i := 0; i < 20; i++ {
		k := kv.Key(fmt.Sprintf("k%d", i))
		if _, err := s.dbCli.Update(bg, nil, []KeyValue{{Key: k, Value: kv.Value("v")}}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := DialCache(bg, s.cacheSrv.ln.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer cli.Close()
			for i := 0; i < 50; i++ {
				id := cli.NewTxnID()
				for r := 0; r < 5; r++ {
					k := kv.Key(fmt.Sprintf("k%d", (g+i+r)%20))
					if _, err := cli.Read(bg, id, k, r == 4); err != nil && !errors.Is(err, ErrAborted) {
						t.Errorf("read: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestCodeStrings(t *testing.T) {
	for c, want := range map[Code]string{
		CodeOK: "ok", CodeNotFound: "not-found", CodeAborted: "aborted",
		CodeConflict: "conflict", CodeError: "error", Code(42): "Code(42)",
	} {
		if got := c.String(); got != want {
			t.Fatalf("Code(%d).String() = %q, want %q", c, got, want)
		}
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s := newStack(t, core.StrategyAbort)
	s.cacheSrv.Close()
	s.cacheSrv.Close()
	s.dbSrv.Close()
	s.dbSrv.Close()
}
