package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"tcache/internal/core"
	"tcache/internal/db"
	"tcache/internal/kv"
	"tcache/internal/telemetry"
)

// CacheServer serves a core.Cache over TCP. The cache's backend is
// typically a DBClient pointed at a tdbd instance, with the invalidation
// stream bridged by SubscribeInvalidations.
//
// Beyond the client-facing transactional protocol (OpRead, OpReadMulti,
// OpCommit, OpAbort), a CacheServer also speaks the backend protocol —
// item-granular OpGet and OpGetBatch (with read floors) plus OpSubscribe
// push relays — so a tcached can itself be the Backend of downstream
// caches: the mid-tier of a clustered edge deployment. The owner bridges
// its upstream invalidation stream into Broadcast to feed the relays.
type CacheServer struct {
	cache *core.Cache
	ln    net.Listener

	// ctx is cancelled by Close; it bounds in-flight backend fetches.
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// subs are the downstream invalidation relays, by subscriber name.
	// Broadcast pushes to each relay's queue while holding subMu:
	//
	//tcache:lockorder relay < invq
	subMu sync.Mutex //tcache:lockclass relay
	subs  map[string]*invPusher

	// reg, when set, replaces the legacy OpStats counter map with the
	// full registry snapshot (counters + gauges + histograms) in flat
	// wire encoding — protocol-v5 compatible: only more map keys.
	reg atomic.Pointer[telemetry.Registry]

	logf func(format string, args ...any)
}

// NewCacheServer wraps c; call Listen to start accepting.
func NewCacheServer(c *core.Cache, logf func(string, ...any)) *CacheServer {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	//lint:ignore ctxdiscipline the server ctx spans all connections and is cancelled by Close, not by any one caller
	ctx, cancel := context.WithCancel(context.Background())
	return &CacheServer{
		cache: c, ctx: ctx, cancel: cancel,
		conns: make(map[net.Conn]struct{}),
		subs:  make(map[string]*invPusher),
		logf:  logf,
	}
}

// Broadcast relays one invalidation to every downstream subscriber. The
// owning daemon calls it from its upstream subscription sink (after
// applying the invalidation to its own cache), turning the server into a
// relay hop of the database's asynchronous invalidation pipeline — as
// lossy as the rest of it, which the T-Cache protocol tolerates by
// design.
func (s *CacheServer) Broadcast(inv Invalidation) {
	s.subMu.Lock()
	for _, p := range s.subs {
		p.push(inv)
	}
	s.subMu.Unlock()
}

// Subscribers returns the number of connected downstream relays.
func (s *CacheServer) Subscribers() int {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	return len(s.subs)
}

// SetRegistry makes OpStats serve the full registry snapshot (flat
// encoding) instead of the legacy fixed counter map. Call it before
// Listen; the registry should already aggregate the cache's metrics
// (core.Cache.RegisterMetrics) and this server's (RegisterMetrics).
func (s *CacheServer) SetRegistry(reg *telemetry.Registry) { s.reg.Store(reg) }

// RegisterMetrics registers the server-local gauges: connected
// downstream relays and their queued-invalidation backlog.
// relay_subscribers keeps its legacy name but is now typed as a gauge
// on the wire (it was always instantaneous, never a counter).
//
//tcache:metric
func (s *CacheServer) RegisterMetrics(reg *telemetry.Registry) {
	reg.Gauge("relay_subscribers", func() uint64 { return uint64(s.Subscribers()) })
	reg.Gauge("relay_queue", func() uint64 { return s.queuedInvalidations() })
}

// queuedInvalidations sums the invalidation backlog across every
// downstream relay.
func (s *CacheServer) queuedInvalidations() uint64 {
	s.subMu.Lock()
	pushers := make([]*invPusher, 0, len(s.subs))
	for _, p := range s.subs {
		pushers = append(pushers, p)
	}
	s.subMu.Unlock()
	var n uint64
	for _, p := range pushers {
		n += uint64(p.depth())
	}
	return n
}

// Listen binds addr and starts serving in the background, returning the
// bound address.
func (s *CacheServer) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop()
	}()
	return ln.Addr().String(), nil
}

// Close stops accepting and closes all connections.
func (s *CacheServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}

func (s *CacheServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// handle serves one connection: version handshake, then request frames
// dispatched concurrently — a read stuck on a slow backend fetch never
// head-of-line-blocks the other requests multiplexed on the connection.
func (s *CacheServer) handle(conn net.Conn) {
	// Defer order (LIFO): cancel in-flight fetches, close the connection
	// — so a dispatch goroutine stuck writing to a peer that stopped
	// reading errors out instead of wedging the wait — then wait for the
	// dispatchers.
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()

	br := bufio.NewReader(conn)
	if err := serverHandshake(conn, br); err != nil {
		if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
			s.logf("tcached: handshake: %v", err)
		}
		return
	}
	fr := newFrameReader(br, s.logf)
	var writeMu sync.Mutex

	for {
		typ, id, payload, err := fr.Read()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("tcached: read: %v", err)
			}
			return
		}
		if typ != frameRequest {
			continue
		}
		req, derr := decodeRequest(payload)
		if derr != nil {
			s.logf("tcached: decode: %v", derr)
			resp := Response{Code: CodeError, Err: derr.Error()}
			if writeResponseFrame(conn, &writeMu, id, &resp) != nil {
				return
			}
			continue
		}
		if req.Op == OpSubscribe {
			// Switch to push mode: relay this cache's upstream invalidation
			// stream (fed via Broadcast) to the downstream subscriber.
			s.servePush(conn, fr, &writeMu, id, req.Subscriber)
			return
		}
		if cacheNonBlocking(req.Op) {
			// Local-only ops answer inline: no goroutine hop, and they
			// cannot head-of-line-block the connection.
			resp := s.dispatch(ctx, req)
			if err := writeResponseFrame(conn, &writeMu, id, &resp); err != nil {
				s.logf("tcached: write: %v", err)
				return
			}
			continue
		}
		reqWG.Add(1)
		go func(id uint64, req Request) {
			defer reqWG.Done()
			resp := s.dispatch(ctx, req)
			if err := writeResponseFrame(conn, &writeMu, id, &resp); err != nil {
				s.logf("tcached: write: %v", err)
				conn.Close() // unblock the frame reader
			}
		}(id, req)
	}
}

// cacheNonBlocking reports whether op completes without ever waiting on
// the backend, so the serving loop may run it inline. Read ops stay on
// dispatch goroutines: a miss blocks on the backend fetch.
func cacheNonBlocking(op Op) bool {
	switch op {
	case OpPing, OpStats, OpCommit, OpAbort:
		return true
	default:
		return false
	}
}

// servePush turns the connection into an invalidation relay for
// subscriber name, mirroring the DB server's push mode: invalidations
// fed to Broadcast are queued and flushed in coalesced batch frames. A
// name already registered errors — two downstream caches sharing a name
// would starve one of them, exactly the duplicate-subscriber protection
// the database applies.
func (s *CacheServer) servePush(conn net.Conn, fr *frameReader, writeMu *sync.Mutex, id uint64, name string) {
	if name == "" {
		name = conn.RemoteAddr().String()
	}
	p := newInvPusher(conn, writeMu)
	s.subMu.Lock()
	if _, dup := s.subs[name]; dup {
		s.subMu.Unlock()
		resp := Response{Code: CodeError, Err: fmt.Sprintf("%v: %q", db.ErrDuplicateSubscriber, name)}
		_ = writeResponseFrame(conn, writeMu, id, &resp)
		return
	}
	s.subs[name] = p
	s.subMu.Unlock()
	go p.run()
	defer func() {
		s.subMu.Lock()
		delete(s.subs, name)
		s.subMu.Unlock()
		p.stop()
	}()
	resp := Response{Code: CodeOK}
	if err := writeResponseFrame(conn, writeMu, id, &resp); err != nil {
		return
	}
	// Block until the peer goes away, discarding anything it sends.
	for {
		if _, _, _, err := fr.Read(); err != nil {
			return
		}
	}
}

func (s *CacheServer) dispatch(ctx context.Context, req Request) Response {
	//tcache:exhaustive
	switch req.Op {
	case OpPing:
		return Response{Code: CodeOK}

	case OpRead:
		val, err := s.cache.Read(ctx, kv.TxnID(req.TxnID), req.Key, req.LastOp)
		return readResponse(val, err)

	case OpReadMulti:
		vals, err := s.cache.ReadMulti(ctx, kv.TxnID(req.TxnID), req.Keys, req.LastOp)
		if err != nil {
			return readResponse(nil, err)
		}
		return Response{Code: CodeOK, Values: vals, Found: true}

	case OpGet:
		// Item-granular so a DBClient peer (a downstream cache's backend)
		// gets version and dependency list; plain cache clients keep
		// reading Value and ignore the rest.
		item, ok, err := s.cache.GetItem(ctx, req.Key, req.MinVersion)
		switch {
		case err != nil:
			return Response{Code: CodeError, Err: err.Error()}
		case !ok:
			return Response{Code: CodeNotFound}
		default:
			return Response{Code: CodeOK, Value: item.Value, Found: true, Item: item}
		}

	case OpGetBatch:
		lookups, err := s.cache.GetItems(ctx, req.Keys, req.MinVersion)
		if err != nil {
			return Response{Code: CodeError, Err: err.Error()}
		}
		return Response{Code: CodeOK, Batch: lookups}

	case OpUpdate:
		version, err := s.runUpdate(ctx, req)
		return updateResponse(version, err)

	case OpCommit:
		s.cache.Commit(kv.TxnID(req.TxnID))
		return Response{Code: CodeOK}

	case OpAbort:
		s.cache.Abort(kv.TxnID(req.TxnID))
		return Response{Code: CodeOK}

	case OpStats:
		// See DBServer.dispatch: a registry snapshot is a strict superset
		// of the legacy map, carried in the same Stats field.
		if reg := s.reg.Load(); reg != nil {
			return Response{Code: CodeOK, Stats: telemetry.Flatten(reg.Snapshot())}
		}
		m := s.cache.Metrics()
		return Response{Code: CodeOK, Stats: map[string]uint64{
			"reads":             m.Reads,
			"hits":              m.Hits,
			"misses":            m.Misses,
			"txns_started":      m.TxnsStarted,
			"txns_committed":    m.TxnsCommitted,
			"txns_aborted":      m.TxnsAborted,
			"detected":          m.Detected,
			"retries":           m.Retries,
			"evictions":         m.Evictions,
			"floor_refetches":   m.FloorRefetches,
			"relay_subscribers": uint64(s.Subscribers()),
		}}

	case OpSubscribe:
		// Subscriptions switch the connection into relay mode before
		// dispatch (see handle); reaching here means a second OpSubscribe
		// arrived on an already-dispatched stream.
		return Response{Code: CodeError, Err: "tcached: subscribe must be the first request on its connection"}

	case OpReplicate, OpPromote:
		// DB-tier replication ops: caches neither stream WALs nor hold
		// roles; replicas connect to a tdbd directly.
		return Response{Code: CodeError, Err: fmt.Sprintf("tcached: op %q is a db-tier operation", req.Op)}

	default:
		return Response{Code: CodeError, Err: fmt.Sprintf("tcached: unknown op %q", req.Op)}
	}
}

// runUpdate relays a validated update through this cache's backend —
// the mid-tier role of the unified write path: edge clients commit
// through whichever tcached they reach, which forwards the observed
// read versions and writes upstream (ultimately to the database, which
// validates and commits). On a commit, the relay applies the writes'
// invalidations to its own cache synchronously, so the node that
// carried the update serves it immediately; on a validation conflict it
// evicts its own stale copy of the conflicting key, so retries routed
// through it refetch instead of re-reading the same stale version.
func (s *CacheServer) runUpdate(ctx context.Context, req Request) (kv.Version, error) {
	if req.ReadVersions == nil {
		return kv.Version{}, errors.New("tcached: update requires the validated form (protocol v4 ReadVersions)")
	}
	ub, ok := s.cache.Backend().(core.UpdaterBackend)
	if !ok {
		return kv.Version{}, fmt.Errorf("tcached: backend %T does not support updates", s.cache.Backend())
	}
	version, err := ub.ValidatedUpdate(ctx, req.ReadVersions, req.Writes)
	if err != nil {
		var ce *db.ConflictError
		if errors.As(err, &ce) && ce.Found {
			s.cache.Invalidate(ce.Key, ce.Current)
		}
		return kv.Version{}, err
	}
	for _, w := range req.Writes {
		s.cache.Invalidate(w.Key, version)
	}
	return version, nil
}

func readResponse(val kv.Value, err error) Response {
	switch {
	case err == nil:
		return Response{Code: CodeOK, Value: val, Found: true}
	case errors.Is(err, core.ErrTxnAborted):
		return Response{Code: CodeAborted, Err: err.Error()}
	case errors.Is(err, core.ErrNotFound):
		return Response{Code: CodeNotFound}
	default:
		return Response{Code: CodeError, Err: err.Error()}
	}
}
