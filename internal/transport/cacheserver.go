package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"tcache/internal/core"
	"tcache/internal/kv"
)

// CacheServer serves a core.Cache over TCP. The cache's backend is
// typically a DBClient pointed at a tdbd instance, with the invalidation
// stream bridged by SubscribeInvalidations.
type CacheServer struct {
	cache *core.Cache
	ln    net.Listener

	// ctx is cancelled by Close; it bounds in-flight backend fetches.
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	logf func(format string, args ...any)
}

// NewCacheServer wraps c; call Listen to start accepting.
func NewCacheServer(c *core.Cache, logf func(string, ...any)) *CacheServer {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &CacheServer{cache: c, ctx: ctx, cancel: cancel, conns: make(map[net.Conn]struct{}), logf: logf}
}

// Listen binds addr and starts serving in the background, returning the
// bound address.
func (s *CacheServer) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop()
	}()
	return ln.Addr().String(), nil
}

// Close stops accepting and closes all connections.
func (s *CacheServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}

func (s *CacheServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *CacheServer) handle(conn net.Conn) {
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("tcached: decode: %v", err)
			}
			return
		}
		if err := enc.Encode(s.dispatch(ctx, req)); err != nil {
			s.logf("tcached: encode: %v", err)
			return
		}
	}
}

func (s *CacheServer) dispatch(ctx context.Context, req Request) Response {
	switch req.Op {
	case OpPing:
		return Response{Code: CodeOK}

	case OpRead:
		val, err := s.cache.Read(ctx, kv.TxnID(req.TxnID), req.Key, req.LastOp)
		return readResponse(val, err)

	case OpReadMulti:
		vals, err := s.cache.ReadMulti(ctx, kv.TxnID(req.TxnID), req.Keys, req.LastOp)
		if err != nil {
			return readResponse(nil, err)
		}
		return Response{Code: CodeOK, Values: vals, Found: true}

	case OpGet:
		val, err := s.cache.Get(ctx, req.Key)
		return readResponse(val, err)

	case OpCommit:
		s.cache.Commit(kv.TxnID(req.TxnID))
		return Response{Code: CodeOK}

	case OpAbort:
		s.cache.Abort(kv.TxnID(req.TxnID))
		return Response{Code: CodeOK}

	case OpStats:
		m := s.cache.Metrics()
		return Response{Code: CodeOK, Stats: map[string]uint64{
			"reads":          m.Reads,
			"hits":           m.Hits,
			"misses":         m.Misses,
			"txns_started":   m.TxnsStarted,
			"txns_committed": m.TxnsCommitted,
			"txns_aborted":   m.TxnsAborted,
			"detected":       m.Detected,
			"retries":        m.Retries,
			"evictions":      m.Evictions,
		}}

	default:
		return Response{Code: CodeError, Err: fmt.Sprintf("tcached: unknown op %q", req.Op)}
	}
}

func readResponse(val kv.Value, err error) Response {
	switch {
	case err == nil:
		return Response{Code: CodeOK, Value: val, Found: true}
	case errors.Is(err, core.ErrTxnAborted):
		return Response{Code: CodeAborted, Err: err.Error()}
	case errors.Is(err, core.ErrNotFound):
		return Response{Code: CodeNotFound}
	default:
		return Response{Code: CodeError, Err: err.Error()}
	}
}
