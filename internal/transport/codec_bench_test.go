package transport

// BenchmarkCodecRoundTrip compares the binary wire codec against a gob
// reference encoder (the v1 framing, retained here — in test code only —
// as the baseline): one representative response, encoded and decoded per
// iteration. The gob encoder/decoder pair is persistent, exactly like a
// v1 connection's, so gob's per-stream type cost is amortized away and
// the comparison isolates steady-state per-message cost.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"tcache/internal/db"
	"tcache/internal/kv"
)

// benchResponse builds the shape the read path actually ships: a 5-key
// batch where every item carries a bounded dependency list.
func benchResponse() Response {
	batch := make([]kv.Lookup, 5)
	for i := range batch {
		deps := make(kv.DepList, 5)
		for j := range deps {
			deps[j] = kv.DepEntry{
				Key:     kv.Key(fmt.Sprintf("obj-%d", (i+j)%5)),
				Version: kv.Version{Counter: uint64(100 + i + j), Node: 1},
			}
		}
		batch[i] = kv.Lookup{
			Item: kv.Item{
				Value:   kv.Value("some object payload bytes"),
				Version: kv.Version{Counter: uint64(200 + i), Node: 1},
				Deps:    deps,
			},
			Found: true,
		}
	}
	return Response{Code: CodeOK, Batch: batch}
}

func benchRequest() Request {
	return Request{Op: OpGetBatch, Keys: []kv.Key{"obj-0", "obj-1", "obj-2", "obj-3", "obj-4"}}
}

func BenchmarkCodecRoundTrip(b *testing.B) {
	b.Run("binary/response", func(b *testing.B) {
		resp := benchResponse()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf := getFrameBuf()
			enc := appendResponse((*buf)[:0], &resp)
			got, err := decodeResponse(enc)
			if err != nil || got.Code != CodeOK || len(got.Batch) != 5 {
				b.Fatalf("decode = %+v, %v", got.Code, err)
			}
			*buf = enc
			putFrameBuf(buf)
		}
	})

	b.Run("gob/response", func(b *testing.B) {
		resp := benchResponse()
		var stream bytes.Buffer
		enc := gob.NewEncoder(&stream)
		dec := gob.NewDecoder(&stream)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(resp); err != nil {
				b.Fatal(err)
			}
			var got Response
			if err := dec.Decode(&got); err != nil {
				b.Fatal(err)
			}
			if got.Code != CodeOK || len(got.Batch) != 5 {
				b.Fatalf("decode = %+v", got.Code)
			}
		}
	})

	b.Run("binary/request", func(b *testing.B) {
		req := benchRequest()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf := getFrameBuf()
			enc := appendRequest((*buf)[:0], &req)
			got, err := decodeRequest(enc)
			if err != nil || len(got.Keys) != 5 {
				b.Fatalf("decode = %+v, %v", got, err)
			}
			*buf = enc
			putFrameBuf(buf)
		}
	})

	b.Run("gob/request", func(b *testing.B) {
		req := benchRequest()
		var stream bytes.Buffer
		enc := gob.NewEncoder(&stream)
		dec := gob.NewDecoder(&stream)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(req); err != nil {
				b.Fatal(err)
			}
			var got Request
			if err := dec.Decode(&got); err != nil {
				b.Fatal(err)
			}
			if len(got.Keys) != 5 {
				b.Fatalf("decode = %+v", got)
			}
		}
	})
}

// BenchmarkWireRoundTrip measures one live request/response exchange over
// loopback through the multiplexed client — the per-round-trip floor
// under the cold read path.
func BenchmarkWireRoundTrip(b *testing.B) {
	d := db.Open(db.Config{DepBound: 5})
	b.Cleanup(func() { d.Close() })
	srv := NewDBServer(d, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	cli, err := DialDB(bg, addr, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cli.Close)
	if _, err := cli.Update(bg, nil, []KeyValue{{Key: "k", Value: kv.Value("v")}}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cli.ReadItem(bg, "k"); err != nil {
			b.Fatal(err)
		}
	}
}
