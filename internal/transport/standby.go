package transport

// The standby loop: connect to the primary, negotiate the replication
// stream, and feed every received frame through db.ApplyReplicated so
// this node's durable state, version counter, and invalidation stream
// stay an exact committed prefix of the primary's. The resume cursor is
// kept in primary-log coordinates and in memory only — a restarted
// standby re-joins with a full state transfer, which the idempotent
// apply path (last-wins puts, max-raise counter) makes safe on top of
// whatever its own log recovered.
//
// On primary loss the loop reconnects with jittered backoff forever,
// unless AutoPromote is set: once the primary has been unreachable for
// PromoteAfter, the standby promotes itself and starts minting versions
// strictly above everything it replicated.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"tcache/internal/db"
	"tcache/internal/wal"
)

// StandbyConfig configures RunStandby.
type StandbyConfig struct {
	// Primary is the address replicated from.
	Primary string
	// Name is the replica identity registered with the primary (its ack
	// and lag accounting key).
	Name string
	// AutoPromote promotes this node once the primary has been
	// unreachable for PromoteAfter.
	AutoPromote  bool
	PromoteAfter time.Duration
	// Logf, if set, receives stream life-cycle messages.
	Logf func(format string, args ...any)
}

// RunStandby replicates from the primary until ctx is cancelled or the
// node is promoted (by an admin's OpPromote, or automatically). It is
// the body of tdbd's -replica-of mode.
func RunStandby(ctx context.Context, d *db.DB, cfg StandbyConfig) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var cursor wal.Pos // primary-log coordinates; zero asks for a full image
	lastContact := time.Now()
	backoff := 50 * time.Millisecond
	for ctx.Err() == nil {
		if d.Role() != db.RoleStandby {
			logf("tdbd: promoted (counter=%d); leaving the standby loop", d.VersionCounter())
			return
		}
		// Bound the negotiation: a peer (or network) that swallows the mode
		// response must not wedge the loop — time out, back off, redial.
		octx, ocancel := context.WithTimeout(ctx, 5*time.Second)
		st, err := OpenReplication(octx, cfg.Primary, cfg.Name, cursor)
		ocancel()
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			if cfg.AutoPromote && time.Since(lastContact) > cfg.PromoteAfter {
				counter, perr := d.Promote()
				if perr != nil {
					logf("tdbd: auto-promote failed: %v", perr)
					return
				}
				logf("tdbd: primary %s unreachable for %s; auto-promoted at counter=%d",
					cfg.Primary, cfg.PromoteAfter, counter)
				return
			}
			// Jittered: standbys of a bouncing primary spread their redials.
			sleep := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
			select {
			case <-ctx.Done():
				return
			case <-time.After(sleep):
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			continue
		}
		backoff = 50 * time.Millisecond
		lastContact = time.Now()
		err = followStream(ctx, d, st, &cursor, &lastContact, logf)
		st.Close()
		switch {
		case ctx.Err() != nil:
			return
		case errors.Is(err, db.ErrNotStandby):
			logf("tdbd: promoted (counter=%d); leaving the standby loop", d.VersionCounter())
			return
		case err != nil:
			logf("tdbd: replication stream from %s broke: %v", cfg.Primary, err)
		}
	}
}

// followStream consumes one negotiated stream: the full state image, if
// the primary sent one, then contiguous record frames, acknowledging
// each batch once it is durably applied. It updates the resume cursor
// and last-contact time as frames arrive and returns when the stream
// breaks or the apply path refuses (promotion).
func followStream(ctx context.Context, d *db.DB, st *ReplStream, cursor *wal.Pos, lastContact *time.Time, logf func(string, ...any)) error {
	stop := context.AfterFunc(ctx, st.Close) // unblock synchronous reads on shutdown
	defer stop()

	if st.SnapshotMode() {
		// The primary no longer holds our cursor (or we never had one):
		// everything streams again. Idempotent apply makes the overlap
		// with already-held state harmless.
		logf("tdbd: full state transfer from primary (cursor %s not resumable)", *cursor)
		applied := uint64(0)
		for {
			batch, _, total, done, err := st.NextSnapshot()
			if err != nil {
				return err
			}
			*lastContact = time.Now()
			if done {
				// Snapshot frames have no positional contiguity, so a lost
				// or reordered entry frame is only visible here: the
				// terminator declares how many entries the image holds.
				// Refuse a short transfer — the cursor is still zero, so
				// the reconnect streams a fresh image.
				if applied != total {
					return fmt.Errorf("tdbd: snapshot image incomplete: applied %d of %d entries", applied, total)
				}
				break
			}
			recs := make([]wal.Record, len(batch))
			for i, e := range batch {
				recs[i] = wal.Record{
					Version: e.Version,
					Writes:  []wal.Entry{{Key: e.Key, Value: e.Value, Deps: e.Deps}},
				}
			}
			if _, err := d.ApplyReplicated(recs); err != nil {
				return err
			}
			applied += uint64(len(batch))
		}
		// The terminator fixed the log cut the records continue from;
		// acknowledging it tells the primary we hold everything before it.
		*cursor = st.Start()
		logf("tdbd: state transfer complete: %d entries, resuming at %s (counter=%d)",
			applied, *cursor, d.VersionCounter())
	}
	if err := st.Ack(*cursor, d.VersionCounter()); err != nil {
		return err
	}

	for {
		start, end, recs, err := st.NextRecords()
		if err != nil {
			return err
		}
		*lastContact = time.Now()
		if start != *cursor {
			// A contiguity break means this stream cannot be trusted to be
			// an exact prefix; drop the cursor so the reconnect takes a
			// fresh image.
			prev := *cursor
			*cursor = wal.Pos{}
			return fmt.Errorf("tdbd: replication gap: frame starts at %s, cursor at %s", start, prev)
		}
		if _, err := d.ApplyReplicated(recs); err != nil {
			return err
		}
		*cursor = end
		if err := st.Ack(end, d.VersionCounter()); err != nil {
			return err
		}
	}
}
