// Package transport serves the database and the cache over TCP, so the
// system can be deployed as the paper describes it: a backend database
// daemon (cmd/tdbd), edge cache daemons close to clients (cmd/tcached),
// and an asynchronous invalidation stream from the database to each
// cache. Framing is the versioned, length-prefixed binary protocol of
// codec.go over a plain TCP connection: requests carry ids and are
// multiplexed — many in-flight calls share one connection and responses
// arrive in completion order — except on subscription connections, which
// switch to a server-push stream of batched invalidation frames.
package transport

import (
	"fmt"

	"tcache/internal/kv"
	"tcache/internal/wal"
)

// Op names a request operation.
type Op string

// Operations understood by the servers.
const (
	// OpPing checks liveness (both servers).
	OpPing Op = "ping"
	// OpGet reads one item: lock-free committed read on the DB server,
	// plain cache read on the cache server.
	OpGet Op = "get"
	// OpGetBatch reads many items in one round trip (DB server); the
	// response carries one Lookup per requested key, positionally.
	OpGetBatch Op = "get-batch"
	// OpUpdate runs one update transaction. With ReadVersions set
	// (protocol v4, the unified write path) the server validates the
	// observed read versions and commits the Writes atomically, or
	// rejects with CodeConflict; a cache server relays the op to its own
	// backend, so edge clients commit through the mid-tier. Without
	// ReadVersions it is the legacy static-set form: read the Reads set
	// under locks, then write the Writes set (DB server only).
	OpUpdate Op = "update"
	// OpSubscribe switches a DB-server connection into a push stream of
	// invalidations.
	OpSubscribe Op = "subscribe"
	// OpRead is the cache server's transactional read:
	// read(txnID, key, lastOp).
	OpRead Op = "read"
	// OpReadMulti is the cache server's batch transactional read: all of
	// Keys are read in order within TxnID for one round trip.
	OpReadMulti Op = "read-multi"
	// OpCommit finalizes a cache transaction without a further read.
	OpCommit Op = "commit"
	// OpAbort discards a cache transaction.
	OpAbort Op = "abort"
	// OpStats fetches the cache server's counters.
	OpStats Op = "stats"
	// OpReplicate switches a DB-server connection into the replication
	// stream (protocol v5): the server answers with the stream mode
	// (resume or full snapshot), then pushes snapshot-entry and
	// WAL-record frames; the standby sends ack frames back on the same
	// connection. Primary only.
	OpReplicate Op = "replicate"
	// OpPromote turns a standby into a writable primary (protocol v5).
	// Idempotent on a primary.
	OpPromote Op = "promote"
)

// KeyValue is one write of an update transaction.
type KeyValue = kv.KeyValue

// ObservedRead is one validated read of an update transaction: the
// version (and presence) the client observed, which the server re-checks
// under lock before committing.
type ObservedRead = kv.ObservedRead

// Request is the client→server message.
//
//tcache:wire encode=appendRequest decode=decodeRequest
type Request struct {
	Op     Op
	Key    kv.Key
	TxnID  uint64
	LastOp bool
	// Keys is the key list of batch operations (OpGetBatch, OpReadMulti).
	Keys []kv.Key
	// Subscriber names the invalidation subscription (OpSubscribe).
	Subscriber string
	Reads      []kv.Key
	Writes     []KeyValue
	// ReadVersions is the observed read set of a validated OpUpdate
	// (protocol v4): the server re-reads each key under lock and commits
	// the Writes only if every version (and presence) still matches.
	// nil selects the legacy static-set update; an empty non-nil slice is
	// a blind validated write.
	ReadVersions []ObservedRead
	// MinVersion is the read floor of OpGet and OpGetBatch on a cache
	// server: a cached entry older than this is refetched from the
	// backend instead of served, so a cluster client that already
	// observed a newer version (or relayed a newer invalidation) is never
	// handed stale data by a failed-over node. The zero version means no
	// floor; the DB server ignores it (its reads are always current).
	MinVersion kv.Version
	// ReplFrom is the resume cursor of an OpReplicate request (protocol
	// v5): the primary-log position after the last record this standby
	// applied. The zero position (a fresh or restarted standby) asks for
	// a full state transfer; a non-zero position resumes the stream there
	// if the segment is still live, falling back to a snapshot otherwise.
	// The replica's identity rides in Subscriber.
	ReplFrom wal.Pos
}

// Code classifies a response.
type Code int

// Response codes.
const (
	// CodeOK means the operation succeeded.
	CodeOK Code = iota + 1
	// CodeNotFound means the key exists nowhere.
	CodeNotFound
	// CodeAborted means the cache aborted the read-only transaction on a
	// detected inconsistency.
	CodeAborted
	// CodeConflict means the update transaction lost a concurrency fight
	// and should be retried.
	CodeConflict
	// CodeError carries any other failure in Err.
	CodeError
	// CodeNotPrimary rejects a write sent to a standby (protocol v5);
	// Leader, when set, names the primary to redirect to.
	CodeNotPrimary
)

func (c Code) String() string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeNotFound:
		return "not-found"
	case CodeAborted:
		return "aborted"
	case CodeConflict:
		return "conflict"
	case CodeError:
		return "error"
	case CodeNotPrimary:
		return "not-primary"
	default:
		return fmt.Sprintf("Code(%d)", int(c))
	}
}

// Response is the server→client message.
//
//tcache:wire encode=appendResponse decode=decodeResponse
type Response struct {
	Code    Code
	Err     string
	Value   kv.Value
	Found   bool
	Item    kv.Item
	Version kv.Version
	// Batch is set for OpGetBatch: one Lookup per requested key.
	Batch []kv.Lookup
	// Values is set for OpReadMulti: one value per requested key.
	Values []kv.Value
	// Stats is set for OpStats.
	Stats map[string]uint64
	// ConflictKey and ConflictVersion detail a CodeConflict from a
	// validated OpUpdate (protocol v4): the observed read that failed
	// validation and the version now committed for it (ConflictFound
	// false means the key no longer exists). An optimistic client uses
	// them to invalidate its stale copy before retrying. Empty when the
	// conflict came from lock arbitration rather than validation.
	ConflictKey     kv.Key
	ConflictVersion kv.Version
	ConflictFound   bool
	// Replication fields (protocol v5).
	//
	// Role and Leader report the serving node's replication role on
	// OpPing, OpPromote, and CodeNotPrimary rejections; Leader is the
	// primary's advertised address when this node is a standby that knows
	// it. Healthy and HealthErr carry the node's durability health (the
	// WAL's sticky fail-stop error, if any). ReplLag is the primary's
	// version-counter distance to its slowest connected replica, and
	// ReplCounter the node's current version counter.
	Role        string
	Leader      string
	Healthy     bool
	HealthErr   string
	ReplLag     uint64
	ReplCounter uint64
	// ReplSnapshot, on an OpReplicate acceptance, announces that a full
	// state image (snapshot-entry frames) precedes the live record
	// stream; ReplPos is the stream's start position (resume mode only —
	// in snapshot mode the cut position arrives in the snapshot
	// terminator frame instead, because it is not known until the image
	// has been cut).
	ReplSnapshot bool
	ReplPos      wal.Pos
}

// Invalidation is pushed on subscription connections.
type Invalidation struct {
	Key     kv.Key
	Version kv.Version
}
