package clock

import (
	"testing"
	"time"
)

func TestSimNowStartsAtOrigin(t *testing.T) {
	origin := time.Unix(100, 0).UTC()
	s := NewSim(origin)
	if got := s.Now(); !got.Equal(origin) {
		t.Fatalf("Now() = %v, want %v", got, origin)
	}
}

func TestSimAfterFuncOrdering(t *testing.T) {
	s := NewSimAtZero()
	var order []int
	s.AfterFunc(30*time.Millisecond, func() { order = append(order, 3) })
	s.AfterFunc(10*time.Millisecond, func() { order = append(order, 1) })
	s.AfterFunc(20*time.Millisecond, func() { order = append(order, 2) })

	if n := s.RunFor(time.Second); n != 3 {
		t.Fatalf("RunFor executed %d events, want 3", n)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSimSameDeadlineFIFO(t *testing.T) {
	s := NewSimAtZero()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.AfterFunc(5*time.Millisecond, func() { order = append(order, i) })
	}
	s.RunFor(time.Second)
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("same-deadline events ran out of order: %v", order)
		}
	}
}

func TestSimTimeAdvancesToEventDeadline(t *testing.T) {
	s := NewSimAtZero()
	start := s.Now()
	var at time.Time
	s.AfterFunc(42*time.Millisecond, func() { at = s.Now() })
	s.Step()
	if got := at.Sub(start); got != 42*time.Millisecond {
		t.Fatalf("event ran at +%v, want +42ms", got)
	}
}

func TestSimRunAdvancesToUntilWhenIdle(t *testing.T) {
	s := NewSimAtZero()
	until := s.Now().Add(5 * time.Second)
	s.Run(until)
	if !s.Now().Equal(until) {
		t.Fatalf("Now() = %v, want %v", s.Now(), until)
	}
}

func TestSimRunBoundary(t *testing.T) {
	s := NewSimAtZero()
	ran := 0
	s.AfterFunc(time.Second, func() { ran++ })
	s.AfterFunc(time.Second+time.Nanosecond, func() { ran++ })
	s.RunFor(time.Second)
	if ran != 1 {
		t.Fatalf("events at exactly `until` should run; got %d, want 1", ran)
	}
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending() = %d, want 1", got)
	}
}

func TestSimStopCancels(t *testing.T) {
	s := NewSimAtZero()
	ran := false
	tm := s.AfterFunc(time.Millisecond, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer, want true")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	s.RunFor(time.Second)
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestSimStopAfterFire(t *testing.T) {
	s := NewSimAtZero()
	tm := s.AfterFunc(time.Millisecond, func() {})
	s.RunFor(time.Second)
	if tm.Stop() {
		t.Fatal("Stop() after firing = true, want false")
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSimAtZero()
	var hits []time.Duration
	start := s.Now()
	var tick func()
	tick = func() {
		hits = append(hits, s.Since(start))
		if len(hits) < 5 {
			s.AfterFunc(10*time.Millisecond, tick)
		}
	}
	s.AfterFunc(10*time.Millisecond, tick)
	s.RunFor(time.Second)
	if len(hits) != 5 {
		t.Fatalf("got %d ticks, want 5", len(hits))
	}
	for i, h := range hits {
		want := time.Duration(i+1) * 10 * time.Millisecond
		if h != want {
			t.Fatalf("tick %d at +%v, want +%v", i, h, want)
		}
	}
}

func TestSimNegativeDelayRunsNow(t *testing.T) {
	s := NewSimAtZero()
	before := s.Now()
	var at time.Time
	s.AfterFunc(-time.Hour, func() { at = s.Now() })
	s.Step()
	if !at.Equal(before) {
		t.Fatalf("negative-delay event at %v, want %v", at, before)
	}
}

func TestSimAtPastClampsToNow(t *testing.T) {
	s := NewSimAtZero()
	s.RunFor(time.Minute)
	now := s.Now()
	var at time.Time
	s.At(now.Add(-time.Second), func() { at = s.Now() })
	s.Step()
	if !at.Equal(now) {
		t.Fatalf("past At event ran at %v, want %v", at, now)
	}
}

func TestSimDrain(t *testing.T) {
	s := NewSimAtZero()
	count := 0
	for i := 0; i < 100; i++ {
		s.AfterFunc(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	if n := s.Drain(1000); n != 100 {
		t.Fatalf("Drain executed %d, want 100", n)
	}
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
}

func TestSimDrainRunawayGuard(t *testing.T) {
	s := NewSimAtZero()
	var loop func()
	loop = func() { s.AfterFunc(time.Millisecond, loop) }
	s.AfterFunc(time.Millisecond, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("Drain did not panic on runaway event loop")
		}
	}()
	s.Drain(50)
}

func TestRealClockBasics(t *testing.T) {
	var c Clock = Real{}
	t0 := c.Now()
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Real.AfterFunc never fired")
	}
	if c.Since(t0) <= 0 {
		t.Fatal("Since returned non-positive duration")
	}
}

func TestRealTimerStop(t *testing.T) {
	var c Clock = Real{}
	tm := c.AfterFunc(time.Hour, func() { t.Error("should not fire") })
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending real timer")
	}
}
