package clock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Sim is a deterministic discrete-event simulation clock.
//
// Events scheduled with AfterFunc (or At) are kept in a priority queue
// ordered by (time, insertion sequence); Run and Step pop events and execute
// them inline, advancing the virtual time to each event's deadline. Two
// events with the same deadline run in the order they were scheduled, which
// makes experiment runs bit-for-bit reproducible for a fixed seed.
//
// Sim is safe for concurrent use, but the intended mode of operation is
// single-threaded: the experiment loop owns the clock and all components
// execute inside event callbacks.
type Sim struct {
	mu   sync.Mutex
	now  time.Time
	seq  uint64
	heap eventHeap
	// running guards against re-entrant Run/Step calls from inside an
	// event callback, which would deadlock or corrupt ordering.
	running bool
}

var _ Clock = (*Sim)(nil)

// NewSim returns a simulation clock whose current time is start.
func NewSim(start time.Time) *Sim {
	return &Sim{now: start}
}

// NewSimAtZero returns a simulation clock starting at the zero-plus-epoch
// time used throughout the experiment harness (an arbitrary fixed origin).
func NewSimAtZero() *Sim {
	return NewSim(time.Unix(0, 0).UTC())
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Since implements Clock.
func (s *Sim) Since(t time.Time) time.Duration {
	return s.Now().Sub(t)
}

// AfterFunc implements Clock. Negative durations are treated as zero.
func (s *Sim) AfterFunc(d time.Duration, f func()) Timer {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scheduleLocked(s.now.Add(d), f)
}

// At schedules f at the absolute virtual time at. Times in the past run at
// the current time (they still run strictly after the currently executing
// event returns).
func (s *Sim) At(at time.Time, f func()) Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	if at.Before(s.now) {
		at = s.now
	}
	return s.scheduleLocked(at, f)
}

func (s *Sim) scheduleLocked(at time.Time, f func()) Timer {
	s.seq++
	ev := &event{at: at, seq: s.seq, fn: f, clock: s}
	heap.Push(&s.heap, ev)
	return ev
}

// Step executes the next pending event, advancing virtual time to its
// deadline. It reports whether an event was executed.
func (s *Sim) Step() bool {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		panic("clock: re-entrant Sim.Step from inside an event callback")
	}
	ev := s.popRunnableLocked(time.Time{}, false)
	if ev == nil {
		s.mu.Unlock()
		return false
	}
	s.running = true
	s.mu.Unlock()

	ev.fn()

	s.mu.Lock()
	s.running = false
	s.mu.Unlock()
	return true
}

// Run executes events in order until no event remains with deadline <= until,
// leaving the virtual time at until (or at the last event's time if that is
// later than until, which cannot happen by construction). It returns the
// number of events executed.
func (s *Sim) Run(until time.Time) int {
	n := 0
	for {
		s.mu.Lock()
		if s.running {
			s.mu.Unlock()
			panic("clock: re-entrant Sim.Run from inside an event callback")
		}
		ev := s.popRunnableLocked(until, true)
		if ev == nil {
			if s.now.Before(until) {
				s.now = until
			}
			s.mu.Unlock()
			return n
		}
		s.running = true
		s.mu.Unlock()

		ev.fn()
		n++

		s.mu.Lock()
		s.running = false
		s.mu.Unlock()
	}
}

// RunFor advances the clock by d, executing all events that fall due.
func (s *Sim) RunFor(d time.Duration) int {
	return s.Run(s.Now().Add(d))
}

// Drain runs events until the queue is empty and returns the number
// executed. It panics after maxEvents events as a runaway guard.
func (s *Sim) Drain(maxEvents int) int {
	n := 0
	for s.Step() {
		n++
		if n > maxEvents {
			panic(fmt.Sprintf("clock: Sim.Drain exceeded %d events", maxEvents))
		}
	}
	return n
}

// Pending returns the number of scheduled, not-yet-cancelled events.
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, ev := range s.heap {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// popRunnableLocked pops the next non-cancelled event. If bounded, only
// events with deadline <= until qualify. Advances s.now to the event time.
func (s *Sim) popRunnableLocked(until time.Time, bounded bool) *event {
	for s.heap.Len() > 0 {
		ev := s.heap[0]
		if bounded && ev.at.After(until) {
			return nil
		}
		heap.Pop(&s.heap)
		if ev.cancelled {
			continue
		}
		if ev.at.After(s.now) {
			s.now = ev.at
		}
		return ev
	}
	return nil
}

// event implements Timer.
type event struct {
	at        time.Time
	seq       uint64
	fn        func()
	index     int
	cancelled bool
	clock     *Sim
}

// Stop implements Timer.
func (e *event) Stop() bool {
	e.clock.mu.Lock()
	defer e.clock.mu.Unlock()
	if e.cancelled || e.index < 0 {
		return false
	}
	e.cancelled = true
	return true
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
