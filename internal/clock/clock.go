// Package clock abstracts time so that every component of the system can run
// either against the wall clock (production) or against a deterministic
// discrete-event simulation clock (experiments, tests).
//
// The simulation clock is what lets the experiment harness replay the
// paper's minutes-long runs (100 update txn/s and 500 read txn/s for
// hundreds of seconds) in milliseconds while preserving all relative
// orderings between transactions, invalidations, and TTL expirations.
package clock

import "time"

// Clock is the time source used by the database, the cache, and the
// workload drivers. Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time

	// AfterFunc schedules f to run d from now and returns a handle that
	// can cancel the pending call. f runs on the clock's dispatch context:
	// for the real clock that is a new goroutine, for the simulation clock
	// it is the simulation loop itself.
	AfterFunc(d time.Duration, f func()) Timer

	// Since returns the elapsed time since t on this clock.
	Since(t time.Time) time.Duration
}

// Timer is a handle to a pending AfterFunc call.
type Timer interface {
	// Stop cancels the pending call. It reports whether the call was
	// still pending (and is now guaranteed not to run).
	Stop() bool
}

// Real is a Clock backed by the time package.
//
// The zero value is ready to use.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{t: time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool { return rt.t.Stop() }
