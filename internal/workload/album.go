package workload

import (
	"fmt"
	"math/rand"

	"tcache/internal/kv"
)

// GeneratorFunc adapts a function to the Generator interface.
type GeneratorFunc func(rng *rand.Rand) []kv.Key

// Pick implements Generator.
func (f GeneratorFunc) Pick(rng *rand.Rand) []kv.Key { return f(rng) }

// Album models the paper's §II web-album motivation: each album has one
// access-control list (ACL) object and a set of picture objects. Update
// transactions either re-share the album (rewrite the ACL together with
// a couple of pictures) or retag content (rewrite a few pictures);
// read-only transactions render an album view (the ACL plus some
// pictures). The dangerous inconsistency is a stale ACL rendered with
// fresh pictures — the classic "remove the boss from the ACL, then add
// unflattering pictures".
//
// Album exercises the §VII future directions: pinning each picture's
// dependency on its ACL, and giving ACL objects longer dependency lists
// than pictures.
type Album struct {
	Albums      int
	PicturesPer int
	// ACLUpdateProb is the probability that an update transaction is a
	// re-share (ACL rewrite) rather than a content update.
	ACLUpdateProb float64
	// PicsPerUpdate and PicsPerView size the transactions.
	PicsPerUpdate int
	PicsPerView   int
}

// DefaultAlbum returns a balanced configuration.
func DefaultAlbum() *Album {
	return &Album{
		Albums:        100,
		PicturesPer:   8,
		ACLUpdateProb: 0.25,
		PicsPerUpdate: 2,
		PicsPerView:   3,
	}
}

// ACLKey names album a's access-control object.
func (w *Album) ACLKey(a int) kv.Key {
	return kv.Key(fmt.Sprintf("album%04d/acl", a))
}

// PicKey names picture i of album a.
func (w *Album) PicKey(a, i int) kv.Key {
	return kv.Key(fmt.Sprintf("album%04d/pic%02d", a, i))
}

// Keys returns every object key, for seeding.
func (w *Album) Keys() []kv.Key {
	out := make([]kv.Key, 0, w.Albums*(1+w.PicturesPer))
	for a := 0; a < w.Albums; a++ {
		out = append(out, w.ACLKey(a))
		for i := 0; i < w.PicturesPer; i++ {
			out = append(out, w.PicKey(a, i))
		}
	}
	return out
}

// PictureKeys returns all picture keys (for installing pins).
func (w *Album) PictureKeys(a int) []kv.Key {
	out := make([]kv.Key, w.PicturesPer)
	for i := range out {
		out[i] = w.PicKey(a, i)
	}
	return out
}

func (w *Album) pics(rng *rand.Rand, a, n int) []kv.Key {
	out := make([]kv.Key, n)
	for i := range out {
		out[i] = w.PicKey(a, rng.Intn(w.PicturesPer))
	}
	return out
}

// UpdateGen generates update transactions: ACL re-shares or content
// updates.
func (w *Album) UpdateGen() Generator {
	return GeneratorFunc(func(rng *rand.Rand) []kv.Key {
		a := rng.Intn(w.Albums)
		if rng.Float64() < w.ACLUpdateProb {
			return append([]kv.Key{w.ACLKey(a)}, w.pics(rng, a, w.PicsPerUpdate)...)
		}
		return w.pics(rng, a, w.PicsPerUpdate+1)
	})
}

// ReadGen generates album views: the ACL plus a few pictures.
func (w *Album) ReadGen() Generator {
	return GeneratorFunc(func(rng *rand.Rand) []kv.Key {
		a := rng.Intn(w.Albums)
		// Pictures first: the torn render the paper worries about is a
		// fresh picture displayed under a stale ACL, which the cache can
		// only catch from the pictures' dependency entries.
		return append(w.pics(rng, a, w.PicsPerView), w.ACLKey(a))
	})
}
