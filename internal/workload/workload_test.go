package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"tcache/internal/graph"
	"tcache/internal/kv"
)

func objIndex(t *testing.T, k kv.Key) int {
	t.Helper()
	var i int
	if _, err := fmtSscanf(string(k), &i); err != nil {
		t.Fatalf("bad key %q: %v", k, err)
	}
	return i
}

// fmtSscanf avoids importing fmt twice in test helpers.
func fmtSscanf(s string, i *int) (int, error) {
	if !strings.HasPrefix(s, "o") {
		return 0, errBadKey
	}
	n := 0
	for _, c := range s[1:] {
		if c < '0' || c > '9' {
			return 0, errBadKey
		}
		n = n*10 + int(c-'0')
	}
	*i = n
	return 1, nil
}

var errBadKey = &keyError{}

type keyError struct{}

func (*keyError) Error() string { return "bad key" }

func TestObjectKeyStable(t *testing.T) {
	if ObjectKey(7) != "o000007" {
		t.Fatalf("ObjectKey(7) = %q", ObjectKey(7))
	}
	var i int
	if _, err := fmtSscanf(string(ObjectKey(123)), &i); err != nil || i != 123 {
		t.Fatalf("round trip = %d, %v", i, err)
	}
}

func TestPerfectClustersStayInCluster(t *testing.T) {
	g := &PerfectClusters{Objects: 2000, ClusterSize: 5, TxnSize: 5}
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 500; iter++ {
		keys := g.Pick(rng)
		if len(keys) != 5 {
			t.Fatalf("txn size = %d", len(keys))
		}
		base := objIndex(t, keys[0]) / 5
		for _, k := range keys {
			if objIndex(t, k)/5 != base {
				t.Fatalf("access escaped cluster: %v", keys)
			}
		}
	}
}

func TestPerfectClustersShift(t *testing.T) {
	g := &PerfectClusters{Objects: 100, ClusterSize: 5, TxnSize: 5, Shift: 0}
	g.Advance()
	if g.Shift != 1 {
		t.Fatalf("Shift = %d", g.Shift)
	}
	rng := rand.New(rand.NewSource(2))
	// With shift 1, clusters are 1-5, 6-10, ...: all members of one pick
	// must span a contiguous window of 5 starting at c*5+1.
	for iter := 0; iter < 200; iter++ {
		keys := g.Pick(rng)
		min, max := 1<<30, -1
		for _, k := range keys {
			i := objIndex(t, k)
			if i < min {
				min = i
			}
			if i > max {
				max = i
			}
		}
		if max-min >= 5 && !(min < 5 && max >= 95) { // allow wraparound
			t.Fatalf("shifted cluster too wide: %v", keys)
		}
	}
	// Advance wraps at Objects.
	g.Shift = 99
	g.Advance()
	if g.Shift != 0 {
		t.Fatalf("Shift wrap = %d", g.Shift)
	}
}

func TestBoundedParetoSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, alpha := range []float64{1.0 / 32, 0.5, 1, 4} {
		for i := 0; i < 2000; i++ {
			x := BoundedPareto(rng, alpha, 1, 2000)
			if x < 1 || x > 2000 {
				t.Fatalf("alpha=%v: sample %v out of [1,2000]", alpha, x)
			}
		}
	}
}

func TestBoundedParetoShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	within := func(alpha float64) float64 {
		in := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if BoundedPareto(rng, alpha, 1, 2000) <= 5 {
				in++
			}
		}
		return float64(in) / n
	}
	spiked := within(4)      // should be ≈1
	flat := within(1.0 / 32) // should be small
	if spiked < 0.99 {
		t.Fatalf("alpha=4: only %.3f of mass within cluster width", spiked)
	}
	if flat > 0.4 {
		t.Fatalf("alpha=1/32: %.3f of mass within cluster width (too clustered)", flat)
	}
}

func TestBoundedParetoDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if got := BoundedPareto(rng, 0, 1, 10); got != 1 {
		t.Fatalf("alpha=0 → %v, want lo", got)
	}
	if got := BoundedPareto(rng, 1, 5, 5); got != 5 {
		t.Fatalf("hi==lo → %v, want lo", got)
	}
}

func TestParetoClustersHighAlphaMostlyInCluster(t *testing.T) {
	g := &ParetoClusters{Objects: 2000, ClusterSize: 5, TxnSize: 5, Alpha: 4}
	rng := rand.New(rand.NewSource(6))
	inCluster, total := 0, 0
	for iter := 0; iter < 500; iter++ {
		keys := g.Pick(rng)
		head := (objIndex(t, keys[0]) / 5) * 5 // approximate: first key's cluster
		for _, k := range keys {
			total++
			i := objIndex(t, k)
			if i >= head && i < head+5 {
				inCluster++
			}
		}
	}
	if ratio := float64(inCluster) / float64(total); ratio < 0.9 {
		t.Fatalf("alpha=4 in-cluster ratio = %.3f, want >0.9", ratio)
	}
}

func TestParetoClustersLowAlphaSpreads(t *testing.T) {
	g := &ParetoClusters{Objects: 2000, ClusterSize: 5, TxnSize: 5, Alpha: 1.0 / 32}
	rng := rand.New(rand.NewSource(7))
	distinct := map[int]bool{}
	for iter := 0; iter < 400; iter++ {
		for _, k := range g.Pick(rng) {
			distinct[objIndex(t, k)] = true
		}
	}
	if len(distinct) < 500 {
		t.Fatalf("alpha=1/32 touched only %d distinct objects; want broad spread", len(distinct))
	}
}

func TestUniformCoversRange(t *testing.T) {
	g := &Uniform{Objects: 50, TxnSize: 5}
	rng := rand.New(rand.NewSource(8))
	seen := map[int]bool{}
	for iter := 0; iter < 400; iter++ {
		for _, k := range g.Pick(rng) {
			i := objIndex(t, k)
			if i < 0 || i >= 50 {
				t.Fatalf("out of range: %d", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 50 {
		t.Fatalf("uniform covered %d/50 objects", len(seen))
	}
}

func TestSwitchFlips(t *testing.T) {
	s := &Switch{
		Before: &Uniform{Objects: 10, TxnSize: 1},
		After:  &PerfectClusters{Objects: 10, ClusterSize: 5, TxnSize: 5},
	}
	rng := rand.New(rand.NewSource(9))
	if got := len(s.Pick(rng)); got != 1 {
		t.Fatalf("before flip txn size = %d", got)
	}
	if s.Flipped() {
		t.Fatal("Flipped before Flip")
	}
	s.Flip()
	if !s.Flipped() {
		t.Fatal("not Flipped after Flip")
	}
	if got := len(s.Pick(rng)); got != 5 {
		t.Fatalf("after flip txn size = %d", got)
	}
}

func TestGraphWalkPicksConnectedKeys(t *testing.T) {
	g := graph.New(10)
	for i := 0; i < 9; i++ {
		g.AddEdge(i, i+1)
	}
	w := &GraphWalk{Graph: g, Steps: 5, Prefix: "amz-"}
	rng := rand.New(rand.NewSource(10))
	keys := w.Pick(rng)
	if len(keys) != 6 {
		t.Fatalf("walk txn size = %d, want 6 (start + 5 steps)", len(keys))
	}
	for _, k := range keys {
		if !strings.HasPrefix(string(k), "amz-n") {
			t.Fatalf("key %q missing prefix", k)
		}
	}
}

func TestGraphWalkKeys(t *testing.T) {
	g := graph.New(3)
	w := &GraphWalk{Graph: g, Steps: 2}
	keys := w.Keys()
	if len(keys) != 3 || keys[0] != "n000000" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestAllObjectKeys(t *testing.T) {
	keys := AllObjectKeys(3)
	if len(keys) != 3 || keys[2] != ObjectKey(2) {
		t.Fatalf("AllObjectKeys = %v", keys)
	}
}

func TestGeneratorsDeterministicGivenSeed(t *testing.T) {
	gens := []Generator{
		&PerfectClusters{Objects: 100, ClusterSize: 5, TxnSize: 5},
		&ParetoClusters{Objects: 100, ClusterSize: 5, TxnSize: 5, Alpha: 1},
		&Uniform{Objects: 100, TxnSize: 5},
	}
	for _, g := range gens {
		a := g.Pick(rand.New(rand.NewSource(42)))
		b := g.Pick(rand.New(rand.NewSource(42)))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%T not deterministic: %v vs %v", g, a, b)
			}
		}
	}
}

func TestBoundedParetoMeanDecreasesWithAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mean := func(alpha float64) float64 {
		sum := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += BoundedPareto(rng, alpha, 1, 2000)
		}
		return sum / n
	}
	m1, m2 := mean(0.25), mean(2)
	if !(m1 > m2) || math.IsNaN(m1) || math.IsNaN(m2) {
		t.Fatalf("mean(0.25)=%v should exceed mean(2)=%v", m1, m2)
	}
}
