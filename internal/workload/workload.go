// Package workload implements the transaction-generation side of the
// paper's evaluation (§IV, §V): the perfectly clustered and
// bounded-Pareto approximate-cluster synthetic workloads, uniform access,
// drifting and switching cluster dynamics, and random-walk transactions
// over graph topologies.
//
// A Generator produces the key set of one transaction; the same generator
// drives both update and read-only clients (the paper uses 5-object
// transactions for both).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"tcache/internal/graph"
	"tcache/internal/kv"
)

// Generator produces the access set of one transaction. Implementations
// must be deterministic given the rng stream. Generators are not required
// to be safe for concurrent use with a shared rng.
type Generator interface {
	// Pick returns the keys one transaction accesses, in access order.
	// The returned slice may contain repetitions (the paper's synthetic
	// workloads "choose 5 times with repetitions within this cluster").
	Pick(rng *rand.Rand) []kv.Key
}

// ObjectKey names synthetic object i; all generators in this package use
// it, so workloads over the same object count share a key space.
func ObjectKey(i int) kv.Key {
	return kv.Key(fmt.Sprintf("o%06d", i))
}

// PerfectClusters is the paper's first synthetic workload: objects
// 0..Objects-1 are divided into clusters of ClusterSize; each transaction
// picks one cluster uniformly and then TxnSize objects uniformly with
// repetition from inside it.
type PerfectClusters struct {
	Objects     int
	ClusterSize int
	TxnSize     int
	// Shift rotates cluster boundaries: cluster c covers objects
	// (c*ClusterSize+Shift ... ) mod Objects. DriftingClusters advances
	// it over time (Fig. 5).
	Shift int
}

var _ Generator = (*PerfectClusters)(nil)

// Pick implements Generator.
func (p *PerfectClusters) Pick(rng *rand.Rand) []kv.Key {
	clusters := p.Objects / p.ClusterSize
	c := rng.Intn(clusters)
	out := make([]kv.Key, p.TxnSize)
	for i := range out {
		o := (c*p.ClusterSize + rng.Intn(p.ClusterSize) + p.Shift) % p.Objects
		out[i] = ObjectKey(o)
	}
	return out
}

// Advance shifts the cluster boundaries by one object, wrapping at
// Objects (the Fig. 5 drift step: 0−4,5−9 → 1−5,6−10, …).
func (p *PerfectClusters) Advance() {
	p.Shift = (p.Shift + 1) % p.Objects
}

// ParetoClusters is the paper's approximate-cluster workload (§V-A1):
// each transaction picks a cluster uniformly at random, then picks each
// object by adding a bounded-Pareto offset to the cluster head, wrapping
// around the object range. Large Alpha keeps accesses inside the cluster;
// Alpha near zero approaches uniform access over all objects.
type ParetoClusters struct {
	Objects     int
	ClusterSize int
	TxnSize     int
	// Alpha is the Pareto shape parameter (Fig. 3 sweeps 1/32 … 4).
	Alpha float64
}

var _ Generator = (*ParetoClusters)(nil)

// Pick implements Generator.
func (p *ParetoClusters) Pick(rng *rand.Rand) []kv.Key {
	clusters := p.Objects / p.ClusterSize
	head := rng.Intn(clusters) * p.ClusterSize
	out := make([]kv.Key, p.TxnSize)
	for i := range out {
		off := int(BoundedPareto(rng, p.Alpha, 1, float64(p.Objects))) - 1
		out[i] = ObjectKey((head + off) % p.Objects)
	}
	return out
}

// BoundedPareto draws from a Pareto distribution with shape alpha
// truncated to [lo, hi], by inverse-CDF sampling:
//
//	F(x) = (1 − (lo/x)^α) / (1 − (lo/hi)^α)
func BoundedPareto(rng *rand.Rand, alpha, lo, hi float64) float64 {
	if alpha <= 0 || lo <= 0 || hi <= lo {
		return lo
	}
	u := rng.Float64()
	ratio := math.Pow(lo/hi, alpha)
	x := lo / math.Pow(1-u*(1-ratio), 1/alpha)
	if x > hi {
		x = hi
	}
	if x < lo {
		x = lo
	}
	return x
}

// Uniform picks TxnSize distinct-ish objects uniformly at random over the
// whole object range (with repetition, matching the paper's unclustered
// phase of the Fig. 4 experiment).
type Uniform struct {
	Objects int
	TxnSize int
}

var _ Generator = (*Uniform)(nil)

// Pick implements Generator.
func (u *Uniform) Pick(rng *rand.Rand) []kv.Key {
	out := make([]kv.Key, u.TxnSize)
	for i := range out {
		out[i] = ObjectKey(rng.Intn(u.Objects))
	}
	return out
}

// Switch delegates to Before until Flip is called, then to After. It
// implements the Fig. 4 cluster-formation experiment (uniform accesses
// that suddenly become perfectly clustered).
type Switch struct {
	Before, After Generator
	useAfter      bool
}

var _ Generator = (*Switch)(nil)

// Pick implements Generator.
func (s *Switch) Pick(rng *rand.Rand) []kv.Key {
	if s.useAfter {
		return s.After.Pick(rng)
	}
	return s.Before.Pick(rng)
}

// Flip switches the generator to its After phase.
func (s *Switch) Flip() { s.useAfter = true }

// Flipped reports whether Flip was called.
func (s *Switch) Flipped() bool { return s.useAfter }

// GraphWalk generates transactions by random walks over a topology
// (§V-B1): each transaction starts at a uniformly random node and takes
// Steps steps; the visited nodes are the accessed objects.
type GraphWalk struct {
	Graph *graph.Graph
	// Steps is the walk length (the paper takes 5 steps).
	Steps int
	// Prefix namespaces the keys, so two topologies can share a DB.
	Prefix string
}

var _ Generator = (*GraphWalk)(nil)

// Pick implements Generator.
func (g *GraphWalk) Pick(rng *rand.Rand) []kv.Key {
	start := rng.Intn(g.Graph.NumNodes())
	walk := g.Graph.RandomWalk(start, g.Steps, rng)
	out := make([]kv.Key, len(walk))
	for i, n := range walk {
		out[i] = g.Key(n)
	}
	return out
}

// Key names node n's object.
func (g *GraphWalk) Key(n int) kv.Key {
	return kv.Key(fmt.Sprintf("%sn%06d", g.Prefix, n))
}

// Keys returns every object key of the topology, for seeding.
func (g *GraphWalk) Keys() []kv.Key {
	out := make([]kv.Key, g.Graph.NumNodes())
	for i := range out {
		out[i] = g.Key(i)
	}
	return out
}

// AllObjectKeys returns ObjectKey(0..n-1), for seeding synthetic
// workloads.
func AllObjectKeys(n int) []kv.Key {
	out := make([]kv.Key, n)
	for i := range out {
		out[i] = ObjectKey(i)
	}
	return out
}
