package tcache_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"tcache"
	"tcache/internal/transport"
)

// failoverRig is a replicated DB tier over loopback: a durable primary
// and a warm standby replicating from it, both served over TCP.
type failoverRig struct {
	t           *testing.T
	primary     *tcache.DB
	standby     *tcache.DB
	paddr       string
	saddr       string
	stopPrimary func()
	standbyOff  context.CancelFunc
	standbyDone chan struct{}
}

func newFailoverRig(t *testing.T) *failoverRig {
	t.Helper()
	r := &failoverRig{t: t}
	var err error
	r.primary, err = tcache.OpenDurableDB(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.primary.Close() })
	r.paddr, r.stopPrimary, err = tcache.ServeDB(r.primary, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.stopPrimary)

	r.standby, err = tcache.OpenDurableDB(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.standby.Close() })
	// Role before the first request, as tdbd does.
	r.standby.Core().SetStandby(r.paddr)
	var stopS func()
	r.saddr, stopS, err = tcache.ServeDB(r.standby, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stopS)

	sctx, cancel := context.WithCancel(context.Background())
	r.standbyOff = cancel
	r.standbyDone = make(chan struct{})
	go func() {
		defer close(r.standbyDone)
		transport.RunStandby(sctx, r.standby.Core(), transport.StandbyConfig{
			Primary: r.paddr, Name: r.saddr,
		})
	}()
	t.Cleanup(func() { cancel(); <-r.standbyDone })
	return r
}

// waitCaughtUp blocks until the standby's counter matches the primary's.
func (r *failoverRig) waitCaughtUp() {
	r.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for r.standby.Core().VersionCounter() != r.primary.Core().VersionCounter() {
		if time.Now().After(deadline) {
			r.t.Fatalf("standby stuck at counter %d, primary at %d",
				r.standby.Core().VersionCounter(), r.primary.Core().VersionCounter())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDialFailover rides a client through a primary crash: a Remote
// dialed with both addresses keeps serving reads after the primary dies,
// redirects writes once the standby is promoted, and its invalidation
// subscription re-homes to the survivor — the edge's
// read-your-invalidations survives the failover.
func TestDialFailover(t *testing.T) {
	ctx := context.Background()
	rig := newFailoverRig(t)

	remote, err := tcache.Dial(ctx, rig.paddr+","+rig.saddr,
		tcache.WithDialRetry(3, 20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	// An edge subscription tracking invalidations across the failover.
	var (
		invMu   sync.Mutex
		invSeen = map[tcache.Key]tcache.Version{}
	)
	cancelSub, err := remote.Subscribe("edge", func(inv tcache.Invalidation) {
		invMu.Lock()
		if invSeen[inv.Key].Less(inv.Version) {
			invSeen[inv.Key] = inv.Version
		}
		invMu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancelSub()

	if err := remote.Update(ctx, func(tx *tcache.Tx) error {
		return tx.Set("k", tcache.Value("v1"))
	}); err != nil {
		t.Fatal(err)
	}
	rig.waitCaughtUp()

	// Writes against the standby's address redirect to the leader: a
	// second Remote dialed standby-first must still commit.
	sr, err := tcache.Dial(ctx, rig.saddr)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if err := sr.Update(ctx, func(tx *tcache.Tx) error {
		return tx.Set("k2", tcache.Value("via-redirect"))
	}); err != nil {
		t.Fatalf("write via standby did not redirect: %v", err)
	}
	rig.waitCaughtUp()

	// Kill the primary. Reads must fail over to the standby without an
	// error surfacing to the caller.
	rig.stopPrimary()
	item, ok, err := remote.ReadItem(ctx, "k")
	if err != nil || !ok || string(item.Value) != "v1" {
		t.Fatalf("read after primary death: %q ok=%v err=%v", item.Value, ok, err)
	}

	// Writes surface the crash (outcome unknown → no blind retry), then
	// succeed once the standby is promoted and the client re-targets it.
	status, err := remote.Status(ctx)
	if err != nil || status.Role != "standby" {
		t.Fatalf("status after failover = %+v, err=%v", status, err)
	}
	if _, err := rig.standby.Core().Promote(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		err = remote.Update(ctx, func(tx *tcache.Tx) error {
			return tx.Set("k", tcache.Value("v2"))
		})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("write never succeeded after promotion: %v", err)
		}
		if !errors.Is(err, tcache.ErrUnavailable) && !errors.Is(err, tcache.ErrNotPrimary) {
			t.Fatalf("unexpected write failure class during failover: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The subscription re-homed: the post-promotion write's invalidation
	// reaches the edge through the survivor.
	item, ok, err = remote.ReadItem(ctx, "k")
	if err != nil || !ok || string(item.Value) != "v2" {
		t.Fatalf("read after promotion: %q ok=%v err=%v", item.Value, ok, err)
	}
	waitFor := time.Now().Add(5 * time.Second)
	for {
		invMu.Lock()
		v := invSeen["k"]
		invMu.Unlock()
		if !v.Less(item.Version) {
			break
		}
		if time.Now().After(waitFor) {
			t.Fatalf("invalidation for k@%s never arrived after failover (saw %s)", item.Version, v)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDialRetryWaitsForLateServer starts the server after Dial begins:
// WithDialRetry must keep trying (with backoff) until the address comes
// up, and a cancelled context must end the attempts early.
func TestDialRetryWaitsForLateServer(t *testing.T) {
	ctx := context.Background()
	d := tcache.OpenDB()
	defer d.Close()

	// Reserve an address, then release it so Dial's first pass fails.
	addr, stop, err := tcache.ServeDB(d, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop()

	started := make(chan func(), 1)
	go func() {
		time.Sleep(150 * time.Millisecond)
		_, stop2, err := tcache.ServeDB(d, addr)
		if err != nil {
			t.Error(err)
			started <- func() {}
			return
		}
		started <- stop2
	}()
	remote, err := tcache.Dial(ctx, addr, tcache.WithDialRetry(10, 50*time.Millisecond))
	stop2 := <-started
	defer stop2()
	if err != nil {
		t.Fatalf("Dial with retry: %v", err)
	}
	remote.Close()

	// And ctx cancellation cuts the retry loop short.
	cctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	begin := time.Now()
	if _, err := tcache.Dial(cctx, "127.0.0.1:1", tcache.WithDialRetry(100, time.Second)); err == nil {
		t.Fatal("Dial to a dead port succeeded")
	}
	if took := time.Since(begin); took > 2*time.Second {
		t.Fatalf("cancelled Dial took %s", took)
	}
}
