package tcache

// The unified write path. One API — Update(ctx, func(tx *Tx) error) —
// implemented by every tier of the deployment:
//
//   - *DB runs the closure inside an interactive serializable update
//     transaction (strict two-phase locking, the in-process path);
//   - *Remote runs the closure against optimistic snapshot reads and
//     commits reads-and-writes in ONE validated wire round trip;
//   - *Cache and *ClusterCache do the same, serving the closure's reads
//     from the cache when possible, and on commit apply their own
//     writes' invalidations locally and synchronously — so the edge
//     reads its writes before the asynchronous invalidation stream
//     catches up.
//
// All three retry concurrency conflicts through the same jittered
// exponential backoff driver, so contended writers behave identically
// whether they commit in process, over the wire, or through a cluster.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"tcache/internal/db"
	"tcache/internal/kv"
)

// Updater is the unified write capability: run fn inside a serializable
// update transaction, committing on nil return and rolling back on
// error, with concurrency conflicts retried transparently. It is
// implemented by *DB, *Remote, *Cache, and *ClusterCache, so
// application code performing read-modify-write is indifferent to
// whether it runs in the datacenter, at the edge against a remote
// database, or behind a whole cluster tier.
type Updater interface {
	Update(ctx context.Context, fn func(tx *Tx) error) error
}

var _ = []Updater{(*DB)(nil), (*Remote)(nil), (*Cache)(nil), (*ClusterCache)(nil)}

// ObservedRead is one read an optimistic update transaction observed:
// the key, the version served, and whether the key existed.
type ObservedRead = kv.ObservedRead

// KeyValue is one buffered write of an update transaction.
type KeyValue = kv.KeyValue

// ConflictError details a rejected optimistic commit: the observed read
// that failed validation and the version now committed for it. It wraps
// ErrConflict; Update retries these internally, so applications only see
// it if they inspect errors returned by fn or use UpdaterBackend
// directly.
type ConflictError = db.ConflictError

// UpdaterBackend is the optional write extension of Backend: one
// optimistic update transaction validated and committed atomically —
// the observed read versions are re-checked against the committed state
// and the writes applied only if all still match; a mismatch fails with
// a *ConflictError. *DB and *Remote implement it (and so does the
// cluster tier), which is what lets a Cache attached to them offer
// Update.
type UpdaterBackend interface {
	ValidatedUpdate(ctx context.Context, reads []ObservedRead, writes []KeyValue) (Version, error)
}

var _ = []UpdaterBackend{(*DB)(nil), (*Remote)(nil)}

// ErrUpdatesUnsupported reports an Update on a cache whose backend does
// not implement UpdaterBackend.
var ErrUpdatesUnsupported = errors.New("tcache: backend does not support updates")

// Tx is the transaction handle passed to an Updater's Update closure:
// reads within the transaction, buffered writes that become visible
// atomically at commit.
type Tx struct {
	h txHandle
}

// txHandle is the per-backend transaction mechanism behind Tx: an
// interactive 2PL transaction for *DB, an optimistic buffered one for
// the remote and cache tiers.
type txHandle interface {
	get(ctx context.Context, key Key) (Value, bool, error)
	set(key Key, value Value) error
}

// Get reads key within the update transaction: the transaction's own
// buffered write if there is one, otherwise the backing snapshot (a
// locked read for *DB, the cache or a lock-free backend read for the
// optimistic tiers — re-validated at commit). The boolean reports
// whether the key exists; ctx bounds a blocking or remote read.
//
// As everywhere in this package, the returned Value may share memory
// with the store or cache and must be treated as read-only; Clone it
// before modifying.
func (t *Tx) Get(ctx context.Context, key Key) (Value, bool, error) {
	return t.h.get(ctx, key)
}

// Set buffers a write of key within the update transaction; it becomes
// visible (and durable, on a durable DB) atomically at commit.
func (t *Tx) Set(key Key, value Value) error {
	return t.h.set(key, value)
}

// --- Shared conflict-retry driver ---------------------------------------

// retryConflicts runs attempt, retrying ErrConflict failures with
// jittered exponential backoff until ctx is cancelled. Every Updater
// implementation commits through this one driver, so conflict behavior
// is identical across the in-process, remote, and cluster write paths.
func retryConflicts(ctx context.Context, attempt func(ctx context.Context) error) error {
	backoff := time.Millisecond
	const maxBackoff = 100 * time.Millisecond
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := attempt(ctx)
		if err == nil || !errors.Is(err, ErrConflict) {
			return err
		}
		// Conflict: back off with jitter so colliding retriers spread out
		// instead of livelocking in step.
		if err := sleepJittered(ctx, backoff); err != nil {
			return err
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// sleepJittered sleeps for a uniformly random duration in [d/2, d),
// returning early with ctx.Err() on cancellation.
func sleepJittered(ctx context.Context, d time.Duration) error {
	jittered := d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	t := time.NewTimer(jittered)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// --- *DB: the interactive in-process implementation ----------------------

// dbTx adapts an interactive db.Txn to the Tx handle.
type dbTx struct {
	txn *db.Txn
}

func (t dbTx) get(ctx context.Context, key Key) (Value, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	item, found, err := t.txn.Read(key)
	if err != nil {
		return nil, false, err
	}
	return item.Value, found, nil
}

func (t dbTx) set(key Key, value Value) error {
	return t.txn.Write(key, value)
}

// Update implements Updater: fn runs inside an interactive serializable
// update transaction (reads take shared locks, writes exclusive ones),
// committing on nil return and rolling back on error. Concurrency
// conflicts (deadlock victims, lock timeouts) are retried transparently
// with jittered exponential backoff; cancelling ctx stops the retry
// loop, aborts the in-flight transaction, and unblocks any lock wait it
// is queued in.
func (d *DB) Update(ctx context.Context, fn func(tx *Tx) error) error {
	return retryConflicts(ctx, func(ctx context.Context) error {
		txn := d.inner.BeginCtx(ctx)
		if err := fn(&Tx{h: dbTx{txn: txn}}); err != nil {
			if abortErr := txn.Abort(); abortErr != nil && !errors.Is(abortErr, db.ErrTxnDone) {
				return rollbackError(err, abortErr)
			}
			return err
		}
		_, err := txn.Commit()
		return err
	})
}

// rollbackError combines a closure's failure with a failed rollback so
// neither is lost: historically the rollback error silently replaced the
// closure's, hiding the primary cause. Both remain matchable with
// errors.Is/As.
func rollbackError(fnErr, abortErr error) error {
	return errors.Join(fnErr, fmt.Errorf("tcache: rollback: %w", abortErr))
}

// ValidatedUpdate implements UpdaterBackend on the in-process database:
// the observed reads are re-read under shared locks and compared, and
// the writes committed only if every version still matches.
func (d *DB) ValidatedUpdate(ctx context.Context, reads []ObservedRead, writes []KeyValue) (Version, error) {
	return d.inner.ValidatedUpdate(ctx, reads, writes)
}

// --- Optimistic implementation (Remote, Cache, ClusterCache) --------------

// snapshotRead is the source an optimistic transaction reads from: the
// cache for a cache-attached updater, a lock-free backend read otherwise.
type snapshotRead func(ctx context.Context, key Key) (Item, bool, error)

// occTx is an optimistic update transaction: snapshot reads recorded
// first-read-wins (so the closure sees a stable snapshot and the commit
// can validate it), writes buffered until commit.
type occTx struct {
	read   snapshotRead
	reads  []ObservedRead
	vals   []Value // value at first read, aligned with reads
	writes []KeyValue
}

func (o *occTx) get(ctx context.Context, key Key) (Value, bool, error) {
	// Read-your-writes within the closure: serve the buffered write.
	for i := range o.writes {
		if o.writes[i].Key == key {
			return o.writes[i].Value.Clone(), true, nil
		}
	}
	// Repeat reads serve the recorded observation: the closure sees one
	// stable snapshot even if the backend moves underneath it.
	for i := range o.reads {
		if o.reads[i].Key == key {
			return o.vals[i], o.reads[i].Found, nil
		}
	}
	item, found, err := o.read(ctx, key)
	if err != nil {
		return nil, false, err
	}
	o.reads = append(o.reads, ObservedRead{Key: key, Version: item.Version, Found: found})
	o.vals = append(o.vals, item.Value)
	if !found {
		return nil, false, nil
	}
	return item.Value, true, nil
}

func (o *occTx) set(key Key, value Value) error {
	v := value.Clone()
	for i := range o.writes {
		if o.writes[i].Key == key {
			o.writes[i].Value = v
			return nil
		}
	}
	o.writes = append(o.writes, KeyValue{Key: key, Value: v})
	return nil
}

// occUpdate is the shared optimistic driver: run fn against snapshot
// reads, commit the observed read versions plus buffered writes in one
// ValidatedUpdate, and retry conflicts. committed (optional) runs after
// a successful commit with the writes and their commit version — the
// self-invalidation hook; conflicted (optional) runs on each validation
// conflict before the retry — the cache-healing hook.
func occUpdate(ctx context.Context, fn func(tx *Tx) error, read snapshotRead, ub UpdaterBackend,
	committed func(writes []KeyValue, version Version), conflicted func(*ConflictError)) error {
	return retryConflicts(ctx, func(ctx context.Context) error {
		o := &occTx{read: read}
		if err := fn(&Tx{h: o}); err != nil {
			return err
		}
		version, err := ub.ValidatedUpdate(ctx, o.reads, o.writes)
		if err != nil {
			var ce *ConflictError
			if conflicted != nil && errors.As(err, &ce) {
				conflicted(ce)
			}
			return err
		}
		if committed != nil {
			committed(o.writes, version)
		}
		return nil
	})
}

// Update implements Updater over the wire: fn runs against optimistic
// snapshot reads (lock-free ReadItem round trips), the writes are
// buffered, and the whole transaction commits in ONE OpUpdate round
// trip carrying the observed read versions — the database validates
// them under lock and commits atomically, or rejects the stale snapshot
// with a conflict, which is retried here against fresh reads.
//
// Cancelling ctx abandons the in-flight round trip; a commit frame
// already sent may still apply at the database (the outcome of the
// abandoned attempt is unknown, as with any cancelled remote write).
func (r *Remote) Update(ctx context.Context, fn func(tx *Tx) error) error {
	// Reads go through the failover-aware path, so a retry loop follows
	// the Remote to a promoted standby instead of pinning a dead client.
	return occUpdate(ctx, fn, r.ReadItem, r, nil, nil)
}

// Update implements Updater on a cache: fn's reads are served from the
// cache when it can (missing keys fill from the backend as usual), the
// writes are buffered, and the transaction commits through the
// backend's ValidatedUpdate — for a *Remote backend that is one wire
// round trip; through a cluster tier, one round trip to a relaying edge
// node. The cache requires its Backend to implement UpdaterBackend and
// returns ErrUpdatesUnsupported otherwise.
//
// On commit the cache applies its own writes' invalidations locally and
// synchronously (self-invalidation), so a read on this cache
// immediately after Update observes the written value — read-your-writes
// at the edge — even while the asynchronous invalidation stream is
// still in flight (or lossy). On a validation conflict the stale cached
// copy of the conflicting key is evicted before the retry, so the fresh
// attempt re-reads through to the backend instead of re-observing the
// same stale version.
func (c *Cache) Update(ctx context.Context, fn func(tx *Tx) error) error {
	if c.updateHist == nil {
		return c.update(ctx, fn)
	}
	start := time.Now()
	err := c.update(ctx, fn)
	c.updateHist.ObserveSince(start)
	return err
}

func (c *Cache) update(ctx context.Context, fn func(tx *Tx) error) error {
	ub, ok := c.inner.Backend().(UpdaterBackend)
	if !ok {
		return fmt.Errorf("%w (%T)", ErrUpdatesUnsupported, c.inner.Backend())
	}
	return occUpdate(ctx, fn,
		func(ctx context.Context, key Key) (Item, bool, error) {
			return c.inner.GetItem(ctx, key, kv.Version{})
		},
		ub,
		func(writes []KeyValue, version Version) {
			// Self-invalidation: our own commit's invalidations, applied
			// synchronously instead of waiting for the async stream.
			for _, w := range writes {
				c.inner.Invalidate(w.Key, version)
			}
		},
		func(ce *ConflictError) {
			// Heal the cache: the committed version moved past what we
			// served; evict so the retry refetches.
			if ce.Found {
				c.inner.Invalidate(ce.Key, ce.Current)
			}
		},
	)
}
