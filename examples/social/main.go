// Social: a social-network column on the deterministic simulation clock.
// The workload follows §V-B of the paper: a synthetic Orkut-like
// friendship topology is down-sampled by random walks to 1000 users, and
// every transaction — profile updates and timeline reads alike — is a
// 5-step random walk over the friendship graph. Invalidations from the
// database to the edge cache are delayed and 20% of them are lost.
//
// The example prints the same efficacy metrics the paper reports and
// contrasts a consistency-unaware cache (k=0) with T-Cache (k=3).
//
// Run with: go run ./examples/social
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"tcache/internal/core"
	"tcache/internal/experiment"
	"tcache/internal/graph"
)

func main() {
	full := graph.GenerateSocial(graph.DefaultSocialConfig(6000))
	sampled := graph.RandomWalkSample(full, 1000, 0.15, 1)
	fmt.Printf("topology: %d users, %d friendships, clustering %.3f\n",
		sampled.NumNodes(), sampled.NumEdges(), sampled.AverageClustering())

	p := experiment.DepSweepParams{
		Topology:   experiment.DefaultTopologyParams(),
		Bounds:     []int{0, 3},
		WalkSteps:  4,
		Strategy:   core.StrategyRetry,
		Warmup:     10 * time.Second,
		MeasureFor: 60 * time.Second,
		Drive:      experiment.Drive{UpdateRate: 100, ReadRate: 500},
		Seed:       1,
	}
	series, err := experiment.RunDepListSweep(context.Background(), p)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range series {
		if s.Kind != experiment.TopologyOrkut {
			continue
		}
		base, tc := s.Points[0], s.Points[1]
		fmt.Println()
		fmt.Printf("plain cache (k=0):   %.1f%% of timeline reads showed torn state; hit ratio %.3f\n",
			base.Inconsistency, base.HitRatio)
		fmt.Printf("T-Cache (k=3,RETRY): %.1f%% torn; hit ratio %.3f; DB load %.0f%% of baseline\n",
			tc.Inconsistency, tc.HitRatio, tc.DBAccessNormed)
		fmt.Printf("reduction:           %.0f%% of inconsistencies eliminated with 3-entry dependency lists\n",
			100*(1-tc.Inconsistency/base.Inconsistency))
	}
}
