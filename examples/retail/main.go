// Retail: an online store under live concurrent load. Update
// transactions restock/reprice whole product bundles while read-only
// transactions render product pages from an edge cache whose
// invalidation link drops 20% of messages (the paper's §IV setting).
// StrategyRetry heals most detected inconsistencies transparently.
//
// Run with: go run ./examples/retail
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"tcache"
)

const (
	bundles       = 40 // each bundle is a cluster of related products
	productsPer   = 5
	updaters      = 2
	readers       = 8
	updatesEach   = 150
	pageViewsEach = 600
	dropRate      = 0.20
	invalDelay    = 2 * time.Millisecond
	invalJitter   = 8 * time.Millisecond
)

func productKey(bundle, i int) tcache.Key {
	return tcache.Key(fmt.Sprintf("bundle%02d/product%d", bundle, i))
}

func main() {
	ctx := context.Background()
	db := tcache.OpenDB(tcache.WithDepListBound(5))
	defer db.Close()
	cache, err := tcache.NewCache(db,
		tcache.WithStrategy(tcache.StrategyRetry),
		tcache.WithLossyLink(dropRate, invalDelay, invalJitter, 7),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()

	// Seed the catalog: every bundle gets a consistent price generation.
	for b := 0; b < bundles; b++ {
		b := b
		must(db.Update(ctx, func(tx *tcache.Tx) error {
			for i := 0; i < productsPer; i++ {
				if err := tx.Set(productKey(b, i), price(0)); err != nil {
					return err
				}
			}
			return nil
		}))
	}

	var wg sync.WaitGroup
	// Updaters reprice whole bundles atomically.
	for u := 0; u < updaters; u++ {
		u := u
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + u)))
			for n := 0; n < updatesEach; n++ {
				b := rng.Intn(bundles)
				gen := n + 1
				must(db.Update(ctx, func(tx *tcache.Tx) error {
					for i := 0; i < productsPer; i++ {
						if _, _, err := tx.Get(ctx, productKey(b, i)); err != nil {
							return err
						}
					}
					for i := 0; i < productsPer; i++ {
						if err := tx.Set(productKey(b, i), price(gen)); err != nil {
							return err
						}
					}
					return nil
				}))
			}
		}()
	}

	// Readers render product pages: every view must show one coherent
	// price generation for the whole bundle.
	var pagesOK, pagesRetried atomic64
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for n := 0; n < pageViewsEach; n++ {
				b := rng.Intn(bundles)
				for attempt := 0; ; attempt++ {
					var page []string
					err := cache.ReadTxn(ctx, func(tx *tcache.ReadTx) error {
						for i := 0; i < productsPer; i++ {
							v, err := tx.Get(ctx, productKey(b, i))
							if err != nil {
								return err
							}
							page = append(page, string(v))
						}
						return nil
					})
					if errors.Is(err, tcache.ErrTxnAborted) {
						pagesRetried.add(1)
						continue // render again from a fresher cache
					}
					must(err)
					verifyCoherent(b, page)
					pagesOK.add(1)
					break
				}
			}
		}()
	}
	wg.Wait()

	stats := cache.Stats()
	fmt.Printf("page views rendered:        %d\n", pagesOK.load())
	fmt.Printf("views re-rendered on abort: %d\n", pagesRetried.load())
	fmt.Printf("inconsistencies detected:   %d (eq1=%d, eq2=%d)\n",
		stats.Detected, stats.DetectedEq1, stats.DetectedEq2)
	fmt.Printf("healed by read-through:     %d\n", stats.RetriesResolved)
	fmt.Printf("cache hit ratio:            %.3f\n", stats.HitRatio())
}

// verifyCoherent panics if a rendered page mixes price generations —
// T-Cache's whole job is to make this unreachable-or-rare; with bounded
// dependency lists a residual slip is possible, so we only report it.
func verifyCoherent(bundle int, page []string) {
	for _, p := range page[1:] {
		if p != page[0] {
			fmt.Printf("note: bundle %d rendered with mixed generations (%s vs %s) — "+
				"undetectable with this dependency budget\n", bundle, page[0], p)
			return
		}
	}
}

func price(gen int) tcache.Value {
	return tcache.Value(fmt.Sprintf("gen-%04d", gen))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// atomic64 is a tiny counter to keep the example dependency-free.
type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) add(d int64) {
	a.mu.Lock()
	a.n += d
	a.mu.Unlock()
}

func (a *atomic64) load() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}
