// TTL vs T-Cache: the paper's Fig. 7(c) vs Fig. 7(d) argument in one
// program. Limiting cache-entry TTL is the folklore fix for staleness;
// it buys a little consistency at a large cost in hit ratio and backend
// load. T-Cache's dependency lists buy much more consistency at almost
// no cost. This example runs both on the same product-affinity workload
// and prints them side by side.
//
// Run with: go run ./examples/ttl-vs-tcache
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"tcache/internal/core"
	"tcache/internal/experiment"
)

func main() {
	topo := experiment.TopologyParams{FullNodes: 3000, SampleTo: 600, Restart: 0.15, Seed: 1}
	drive := experiment.Drive{UpdateRate: 100, ReadRate: 500}

	dep := experiment.DepSweepParams{
		Topology:   topo,
		Bounds:     []int{0, 1, 3, 5},
		WalkSteps:  4,
		Strategy:   core.StrategyRetry,
		Warmup:     10 * time.Second,
		MeasureFor: 60 * time.Second,
		Drive:      drive,
		Seed:       1,
	}
	depRes, err := experiment.RunDepListSweep(context.Background(), dep)
	if err != nil {
		log.Fatal(err)
	}

	ttl := experiment.TTLSweepParams{
		Topology:   topo,
		TTLs:       []time.Duration{200 * time.Second, 50 * time.Second, 12 * time.Second, 3 * time.Second},
		WalkSteps:  4,
		Warmup:     10 * time.Second,
		MeasureFor: 60 * time.Second,
		Drive:      drive,
		Seed:       1,
	}
	ttlRes, err := experiment.RunTTLSweep(context.Background(), ttl)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Same workload (product-affinity topology), two staleness mitigations:")
	fmt.Println()
	for _, s := range depRes {
		if s.Kind != experiment.TopologyAmazon {
			continue
		}
		fmt.Println("T-Cache: grow the dependency lists")
		fmt.Printf("  %8s %18s %10s %14s\n", "k", "inconsistency[%]", "hit-ratio", "db-load[%]")
		for _, pt := range s.Points {
			fmt.Printf("  %8d %18.1f %10.3f %14.0f\n", pt.Bound, pt.Inconsistency, pt.HitRatio, pt.DBAccessNormed)
		}
	}
	fmt.Println()
	for _, s := range ttlRes {
		if s.Kind != experiment.TopologyAmazon {
			continue
		}
		fmt.Println("Baseline: shrink the TTL")
		fmt.Printf("  %8s %18s %10s %14s\n", "ttl[s]", "inconsistency[%]", "hit-ratio", "db-load[%]")
		for _, pt := range s.Points {
			fmt.Printf("  %8.0f %18.1f %10.3f %14.0f\n", pt.TTL.Seconds(), pt.Inconsistency, pt.HitRatio, pt.DBAccessNormed)
		}
	}
	fmt.Println()
	fmt.Println("T-Cache removes most inconsistency with flat hit ratio and backend load;")
	fmt.Println("the TTL baseline pays multiples of backend load for a fraction of the benefit.")
}
