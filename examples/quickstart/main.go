// Quickstart: open an embedded database, attach a T-Cache over a lossy
// invalidation link, and watch the cache detect a torn read that a plain
// cache would happily serve.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"tcache"
)

func main() {
	ctx := context.Background()
	db := tcache.OpenDB(tcache.WithDepListBound(5))
	defer db.Close()

	// Drop 100% of invalidations: the cache hears nothing about updates,
	// the worst case of the asynchronous edge environment. Real
	// deployments lose some invalidations; this demo loses all of them.
	cache, err := tcache.NewCache(db,
		tcache.WithStrategy(tcache.StrategyAbort),
		tcache.WithLossyLink(1.0, 0, 0, 42),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()

	// A product page: the toy train and its matching tracks (the paper's
	// §II example).
	must(db.Update(ctx, func(tx *tcache.Tx) error {
		if err := tx.Set("train", tcache.Value("train: $29")); err != nil {
			return err
		}
		return tx.Set("tracks", tcache.Value("tracks: $12"))
	}))

	// The cache serves the tracks once, so it holds a copy.
	val, err := cache.Get(ctx, "tracks")
	must(err)
	fmt.Printf("cached: %s\n", val)

	// The vendor repriced the set in one transaction. The invalidations
	// for this update are lost.
	must(db.Update(ctx, func(tx *tcache.Tx) error {
		for _, k := range []tcache.Key{"train", "tracks"} {
			if _, _, err := tx.Get(ctx, k); err != nil {
				return err
			}
		}
		if err := tx.Set("train", tcache.Value("train: $35")); err != nil {
			return err
		}
		return tx.Set("tracks", tcache.Value("tracks: $15"))
	}))

	// A read-only transaction now sees the new train price (cache miss →
	// fresh from the DB) but would see the OLD tracks price from cache.
	// T-Cache notices that the two cannot belong to one serializable
	// snapshot and aborts instead of lying.
	err = cache.ReadTxn(ctx, func(tx *tcache.ReadTx) error {
		train, err := tx.Get(ctx, "train")
		if err != nil {
			return err
		}
		fmt.Printf("read:   %s\n", train)
		tracks, err := tx.Get(ctx, "tracks")
		if err != nil {
			return err
		}
		fmt.Printf("read:   %s\n", tracks)
		return nil
	})
	if errors.Is(err, tcache.ErrTxnAborted) {
		fmt.Println("T-Cache aborted the transaction: the cached tracks price was stale.")
	} else if err != nil {
		log.Fatal(err)
	} else {
		log.Fatal("expected the torn read to be detected")
	}

	// A retry succeeds with a consistent snapshot (the stale entry is
	// refreshed through the normal miss path after eviction — or use
	// StrategyRetry to heal transparently inside the first attempt).
	stats := cache.Stats()
	fmt.Printf("stats:  detected=%d aborted=%d committed=%d\n",
		stats.Detected, stats.TxnsAborted, stats.TxnsCommitted)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
