// Remote: the paper's actual deployment topology — a datacenter database
// and an edge T-Cache separated by a real TCP link — in one process. The
// database is served with tcache.ServeDB (what cmd/tdbd does), the edge
// attaches with tcache.Dial, and a product page is rendered with one
// batched transactional read (GetMulti: one wire round trip for all cold
// keys). The example then demonstrates context cancellation: a read with
// an already-expired deadline fails fast instead of hanging on the wire.
//
// Run with: go run ./examples/remote
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"tcache"
)

func main() {
	ctx := context.Background()

	// --- Datacenter side -------------------------------------------------
	db := tcache.OpenDB(tcache.WithDepListBound(5))
	defer db.Close()
	addr, stop, err := tcache.ServeDB(db, "127.0.0.1:0")
	must(err)
	defer stop()
	fmt.Printf("database serving on %s\n", addr)

	must(db.Update(ctx, func(tx *tcache.Tx) error {
		for _, kv := range [][2]string{
			{"page/train", "train: $29"},
			{"page/tracks", "tracks: $12"},
			{"page/signal", "signal: $7"},
		} {
			if err := tx.Set(tcache.Key(kv[0]), tcache.Value(kv[1])); err != nil {
				return err
			}
		}
		return nil
	}))

	// --- Edge side -------------------------------------------------------
	remote, err := tcache.Dial(ctx, addr, tcache.WithPoolSize(2))
	must(err)
	defer remote.Close()
	must(remote.Ping(ctx))

	cache, err := tcache.NewCache(remote,
		tcache.WithStrategy(tcache.StrategyRetry),
		tcache.WithName("edge-1"),
	)
	must(err)
	defer cache.Close()

	// Render the product page: one read-only transaction, one round trip
	// for all three cold keys.
	err = cache.ReadTxn(ctx, func(tx *tcache.ReadTx) error {
		page, err := tx.GetMulti(ctx, "page/train", "page/tracks", "page/signal")
		if err != nil {
			return err
		}
		for _, line := range page {
			fmt.Printf("render: %s\n", line)
		}
		return nil
	})
	must(err)

	// Updates flow through the database; its invalidation stream reaches
	// the edge over the subscription connection.
	must(db.Update(ctx, func(tx *tcache.Tx) error {
		return tx.Set("page/train", tcache.Value("train: $35"))
	}))
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := cache.Get(ctx, "page/train")
		must(err)
		if string(v) == "train: $35" {
			fmt.Printf("invalidated+refreshed: %s\n", v)
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("invalidation never arrived")
		}
		time.Sleep(time.Millisecond)
	}

	// Context discipline: a cancelled ctx aborts instead of wedging, and
	// the transaction record is released.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	err = cache.ReadTxn(cancelled, func(tx *tcache.ReadTx) error {
		_, err := tx.Get(cancelled, "page/tracks")
		return err
	})
	fmt.Printf("cancelled read: err=%v, leaked txns=%d\n",
		errors.Is(err, context.Canceled), cache.Core().ActiveTxns())

	s := cache.Stats()
	fmt.Printf("stats: hits=%d misses=%d batch-prefetches=%d\n",
		s.Hits, s.Misses, s.BatchPrefetches)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
