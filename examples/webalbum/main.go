// Webalbum: the paper's §II access-control example with the §VII
// extension. A user removes their boss from an album's ACL and then adds
// unflattering pictures — one transaction. An edge cache that misses the
// ACL invalidation could show the boss the new pictures under the OLD
// access list. With tight dependency budgets the ACL entry gets displaced
// from the pictures' dependency lists, so the torn render slips through;
// pinning the picture→ACL dependency (tcache.DB.Pin) makes it detected.
//
// Run with: go run ./examples/webalbum
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"tcache"
)

const pictures = 6

func pic(i int) tcache.Key { return tcache.Key(fmt.Sprintf("album/pic%d", i)) }

const acl = tcache.Key("album/acl")

func main() {
	fmt.Println("without pinning:", renderOutcome(false))
	fmt.Println("with pinning:   ", renderOutcome(true))
}

// renderOutcome builds the torn-ACL situation and reports what a viewer's
// render transaction experiences.
func renderOutcome(pinned bool) string {
	ctx := context.Background()
	// Tight dependency budget: each object tracks only 1 dependency.
	db := tcache.OpenDB(tcache.WithDepListBound(1))
	defer db.Close()
	cache, err := tcache.NewCache(db,
		tcache.WithStrategy(tcache.StrategyAbort),
		tcache.WithLossyLink(1.0, 0, 0, 7), // the ACL invalidation is lost
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()

	if pinned {
		for i := 0; i < pictures; i++ {
			db.Pin(pic(i), acl)
		}
	}

	// Initial album: boss can see it.
	must(db.Update(ctx, func(tx *tcache.Tx) error {
		if err := tx.Set(acl, tcache.Value("everyone")); err != nil {
			return err
		}
		for i := 0; i < pictures; i++ {
			if err := tx.Set(pic(i), tcache.Value("vacation")); err != nil {
				return err
			}
		}
		return nil
	}))
	// The viewer's edge cache has the old ACL.
	if _, err := cache.Get(ctx, acl); err != nil {
		log.Fatal(err)
	}

	// Lock out the boss and add party pictures — one atomic transaction.
	must(db.Update(ctx, func(tx *tcache.Tx) error {
		if _, _, err := tx.Get(ctx, acl); err != nil {
			return err
		}
		if err := tx.Set(acl, tcache.Value("friends-only")); err != nil {
			return err
		}
		for i := 0; i < 2; i++ {
			if _, _, err := tx.Get(ctx, pic(i)); err != nil {
				return err
			}
			if err := tx.Set(pic(i), tcache.Value("party")); err != nil {
				return err
			}
		}
		return nil
	}))
	// Dependency churn: the pictures keep being retagged against each
	// other, displacing the ACL entry from their bound-1 lists.
	for i := 1; i < pictures; i++ {
		i := i
		must(db.Update(ctx, func(tx *tcache.Tx) error {
			for _, k := range []tcache.Key{pic(i - 1), pic(i)} {
				if _, _, err := tx.Get(ctx, k); err != nil {
					return err
				}
				if err := tx.Set(k, tcache.Value("retagged")); err != nil {
					return err
				}
			}
			return nil
		}))
	}

	// The boss's render: fresh pictures (cache misses) + stale ACL (hit).
	err = cache.ReadTxn(ctx, func(tx *tcache.ReadTx) error {
		for i := 0; i < pictures; i++ {
			if _, err := tx.Get(ctx, pic(i)); err != nil {
				return err
			}
		}
		who, err := tx.Get(ctx, acl)
		if err != nil {
			return err
		}
		if string(who) == "everyone" {
			return errors.New("TORN RENDER: new pictures shown under the old ACL")
		}
		return nil
	})
	switch {
	case errors.Is(err, tcache.ErrTxnAborted):
		return "T-Cache detected the stale ACL and aborted the render (safe)"
	case err != nil:
		return err.Error()
	default:
		return "render saw a consistent album"
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
