// Package tcache is the public API of this repository: an embeddable
// implementation of T-Cache, the transactional edge cache of
//
//	Eyal, Birman, van Renesse — "Cache Serializability: Reducing
//	Inconsistency in Edge Transactions", ICDCS 2015.
//
// The API is context-first and backend-agnostic: a Cache attaches to any
// Backend — the in-process database returned by OpenDB, or a remote one
// reached with Dial — and every blocking operation takes a
// context.Context whose cancellation aborts the work, releases its
// transaction record, and unblocks lock queues.
//
//	db := tcache.OpenDB()
//	defer db.Close()
//	cache, _ := tcache.NewCache(db, tcache.WithStrategy(tcache.StrategyRetry))
//	defer cache.Close()
//
//	_ = db.Update(ctx, func(tx *tcache.Tx) error {
//	    tx.Set("train", []byte("in stock"))
//	    tx.Set("tracks", []byte("in stock"))
//	    return nil
//	})
//
//	err := cache.ReadTxn(ctx, func(tx *tcache.ReadTx) error {
//	    page, err := tx.GetMulti(ctx, "train", "tracks")
//	    _ = page
//	    return err
//	})
//	if errors.Is(err, tcache.ErrTxnAborted) {
//	    // the cache detected that the reads were not serializable
//	}
//
// The paper's deployment — an edge cache separated from the datacenter
// database by an asynchronous, lossy link — is the remote form of the
// same five lines:
//
//	addr, stop, _ := tcache.ServeDB(db, "0.0.0.0:7070") // in the datacenter
//	defer stop()
//
//	remote, _ := tcache.Dial(ctx, addr) // at the edge
//	defer remote.Close()
//	cache, _ := tcache.NewCache(remote)
//	defer cache.Close()
//
// Read-only transactions served by the cache never contact the database
// on hits; the cache detects most non-serializable read sets locally
// using the bounded dependency lists the database maintains (see
// DESIGN.md for the protocol).
package tcache

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"tcache/internal/chaos"
	"tcache/internal/clock"
	"tcache/internal/core"
	"tcache/internal/db"
	"tcache/internal/evict"
	"tcache/internal/kv"
	"tcache/internal/telemetry"
)

// Key identifies an object.
type Key = kv.Key

// Value is an opaque object payload.
type Value = kv.Value

// Version is a database commit version.
type Version = kv.Version

// Item is one versioned object as stored by the database: the payload,
// its commit version, and its bounded dependency list.
type Item = kv.Item

// Lookup is one result of a batch read: the item and whether it exists.
type Lookup = kv.Lookup

// Invalidation is the asynchronous message a backend sends to subscribed
// caches after an update transaction: the key written and its new version.
type Invalidation = db.Invalidation

// Backend is what a Cache needs from its database: the lock-free
// single-entry read that fills misses, and an invalidation subscription.
// Two implementations ship with the package — *DB (in-process) and
// *Remote (a database reached over TCP via Dial) — and applications may
// bring their own.
//
// Backends that also implement BatchBackend serve GetMulti miss fills in
// one request instead of one per key.
type Backend interface {
	// ReadItem returns the current committed item for key and whether the
	// key exists. ctx bounds the read; remote implementations abort their
	// round trip when it is cancelled.
	ReadItem(ctx context.Context, key Key) (Item, bool, error)
	// Subscribe registers an invalidation sink under name, returning a
	// cancel function. Duplicate names error: two caches sharing a name
	// would starve one of them of invalidations.
	Subscribe(name string, sink func(Invalidation)) (cancel func(), err error)
}

// BatchBackend is the optional batch-read extension of Backend: one
// request for many keys. Both *DB and *Remote implement it.
type BatchBackend interface {
	ReadItems(ctx context.Context, keys []Key) ([]Lookup, error)
}

// Strategy selects the cache's reaction to a detected inconsistency.
type Strategy = core.Strategy

// Strategies (§III-B of the paper).
const (
	// StrategyAbort aborts the observing transaction.
	StrategyAbort = core.StrategyAbort
	// StrategyEvict also evicts the stale cache entry.
	StrategyEvict = core.StrategyEvict
	// StrategyRetry additionally re-reads through to the database when
	// the stale object is the one currently being read.
	StrategyRetry = core.StrategyRetry
)

// Errors surfaced by the public API.
var (
	// ErrTxnAborted reports that a read-only transaction observed (or
	// was about to observe) non-serializable data and was aborted.
	ErrTxnAborted = core.ErrTxnAborted
	// ErrNotFound reports a key absent from both cache and database.
	ErrNotFound = core.ErrNotFound
	// ErrConflict reports an update-transaction concurrency conflict —
	// a lock arbitration loss in the database, or a stale optimistic
	// snapshot rejected at validation. Every Updater implementation
	// retries these automatically (with jittered backoff).
	ErrConflict = db.ErrConflict
	// ErrDuplicateSubscriber reports a Subscribe (or NewCache WithName)
	// under a name that is already taken on the backend.
	ErrDuplicateSubscriber = db.ErrDuplicateSubscriber
)

// DB is the transactional backend database. It implements Backend, so a
// Cache can attach to it directly, and Updater/UpdaterBackend, so it is
// one end of the unified write path.
type DB struct {
	inner *db.DB
}

var (
	_ Backend      = (*DB)(nil)
	_ BatchBackend = (*DB)(nil)
)

// DBOption configures OpenDB.
type DBOption func(*db.Config)

// WithShards sets the number of two-phase-commit participants the key
// space is partitioned over (default 1).
func WithShards(n int) DBOption {
	return func(c *db.Config) { c.Shards = n }
}

// WithDepListBound sets the dependency-list length k the database
// maintains per object (default 5, the paper's setting). Longer lists
// detect more inconsistencies at slightly higher metadata cost; 0
// disables dependency tracking.
func WithDepListBound(k int) DBOption {
	return func(c *db.Config) { c.DepBound = k }
}

// WithLockTimeout bounds update-transaction lock waits.
func WithLockTimeout(d time.Duration) DBOption {
	return func(c *db.Config) { c.LockTimeout = d }
}

// WithFsync controls whether OpenDurableDB fsyncs every commit batch
// before acknowledging it (default true). Group commit amortizes the
// fsyncs across concurrent writers. Disabling it trades crash
// durability (commits survive process death but not power loss or
// kernel panic) for write latency. It has no effect on OpenDB.
func WithFsync(on bool) DBOption {
	return func(c *db.Config) { c.WALSync = on }
}

// WithSegmentSize bounds one write-ahead-log segment file for
// OpenDurableDB (0 = the default, 64 MiB). Small segments exist mainly
// for tests; it has no effect on OpenDB.
func WithSegmentSize(n int64) DBOption {
	return func(c *db.Config) { c.WALSegmentSize = n }
}

// WithSnapshotEvery makes OpenDurableDB write a background snapshot
// after every n commits, truncating the log segments the snapshot makes
// obsolete (default 0 = only explicit Snapshot calls). It has no effect
// on OpenDB.
func WithSnapshotEvery(n int) DBOption {
	return func(c *db.Config) { c.SnapshotEvery = n }
}

// OpenDB creates an in-process backend database.
func OpenDB(opts ...DBOption) *DB {
	cfg := db.Config{DepBound: 5, Shards: 1}
	for _, o := range opts {
		o(&cfg)
	}
	return &DB{inner: db.Open(cfg)}
}

// OpenDurableDB creates (or recovers) a database whose commits are made
// durable in a segmented write-ahead log under dir: values, versions
// and dependency lists all survive restarts. Commits are fsynced by
// default (see WithFsync); concurrent committers share batches and
// fsyncs via group commit. Bound log growth with WithSnapshotEvery or
// explicit Snapshot calls.
//
// dir must be a directory (it is created if absent). Logs written by
// versions of this package before the segmented format — a single gob
// file at a path — are not readable; there is no migration.
func OpenDurableDB(dir string, opts ...DBOption) (*DB, error) {
	cfg := db.Config{DepBound: 5, Shards: 1, WALSync: true}
	for _, o := range opts {
		o(&cfg)
	}
	inner, err := db.Recover(cfg, dir)
	if err != nil {
		return nil, err
	}
	return &DB{inner: inner}, nil
}

// Close shuts the database down. For a durable database the error
// reports a write-ahead-log flush failure — acknowledged commits that
// may not survive the next restart; it is always nil for OpenDB.
func (d *DB) Close() error { return d.inner.Close() }

// Snapshot checkpoints a durable database's committed state and
// truncates the write-ahead-log segments the checkpoint makes obsolete.
// Commits proceed concurrently. It is a no-op for OpenDB databases.
func (d *DB) Snapshot() error { return d.inner.Snapshot() }

// Core exposes the underlying database for advanced integrations (e.g.
// serving it over the wire with the transport package, or compacting a
// durable log).
func (d *DB) Core() *db.DB { return d.inner }

// ReadItem implements Backend: the lock-free single-entry read caches use
// to fill misses.
func (d *DB) ReadItem(ctx context.Context, key Key) (Item, bool, error) {
	return d.inner.ReadItem(ctx, key)
}

// ReadItems implements BatchBackend.
func (d *DB) ReadItems(ctx context.Context, keys []Key) ([]Lookup, error) {
	return d.inner.ReadItems(ctx, keys)
}

// Subscribe implements Backend: it registers an invalidation sink under
// name. Duplicate names return ErrDuplicateSubscriber.
func (d *DB) Subscribe(name string, sink func(Invalidation)) (cancel func(), err error) {
	return d.inner.Subscribe(name, sink)
}

// Get performs a lock-free single-entry read of the latest committed
// value directly from the database. The boolean reports presence; the
// error is non-nil only for a cancelled ctx, so a missing key is never
// conflated with an aborted read.
//
// The returned Value shares the store's memory (copy-on-write: commits
// replace items wholesale) and must be treated as read-only; Clone it
// before modifying.
func (d *DB) Get(ctx context.Context, key Key) (Value, bool, error) {
	item, ok, err := d.inner.ReadItem(ctx, key)
	if err != nil {
		return nil, false, err
	}
	return item.Value, ok, nil
}

// Pin declares always-retained dependencies: owner's stored dependency
// list will always include entries for deps at their current committed
// versions, regardless of the LRU bound (the paper's §VII suggestion —
// e.g. pin every album picture to the album's ACL object).
func (d *DB) Pin(owner Key, deps ...Key) { d.inner.Pin(owner, deps...) }

// Unpin removes previously pinned dependencies of owner.
func (d *DB) Unpin(owner Key, deps ...Key) { d.inner.Unpin(owner, deps...) }

// Cache is a T-Cache instance attached to a Backend.
type Cache struct {
	inner *core.Cache
	unsub func()
	seq   atomic.Uint64

	// readTxnHist and updateHist are the whole-transaction latency
	// histograms of an attached Telemetry (nil without WithTelemetry —
	// the paths then take no time stamps).
	readTxnHist *telemetry.Histogram
	updateHist  *telemetry.Histogram
}

// cacheOptions collects NewCache settings.
type cacheOptions struct {
	core core.Config
	link chaos.Config
	// lossy marks that the invalidation link should be routed through a
	// chaos injector instead of delivered synchronously.
	lossy bool
	name  string
	// telemetry is the WithTelemetry attachment, if any.
	telemetry *Telemetry
}

// CacheOption configures NewCache.
type CacheOption func(*cacheOptions)

// WithStrategy sets the inconsistency reaction (default StrategyRetry,
// the paper's best-performing configuration).
func WithStrategy(s Strategy) CacheOption {
	return func(o *cacheOptions) { o.core.Strategy = s }
}

// WithTTL bounds the life span of cache entries (0 = none).
func WithTTL(ttl time.Duration) CacheOption {
	return func(o *cacheOptions) { o.core.TTL = ttl }
}

// WithCapacity bounds the number of cached entries (0 = unbounded); the
// least recently used entry is evicted when full.
//
// Deprecated: WithCapacity is the entry-count compatibility shim over
// the byte-budget eviction subsystem (every entry charged a cost of 1).
// New code should use WithMaxBytes, which bounds what actually matters
// — resident memory — and composes with WithEvictionPolicy and
// WithAdmission. Setting both WithCapacity and WithMaxBytes is an
// error.
func WithCapacity(n int) CacheOption {
	return func(o *cacheOptions) { o.core.Capacity = n }
}

// WithMaxBytes bounds the cache's resident memory: each entry is
// charged key length + value length + a fixed per-entry overhead (plus
// retained older versions under WithMultiversion). 0 = unbounded. The
// budget is split across the cache shards and enforced per shard under
// the shard lock, so a bounded cache keeps the same multi-core scaling
// as an unbounded one. Pair with WithEvictionPolicy to choose how
// victims are picked and WithAdmission to keep one-hit wonders out.
func WithMaxBytes(n int64) CacheOption {
	return func(o *cacheOptions) { o.core.MaxBytes = n }
}

// EvictionPolicy selects how a bounded cache (WithMaxBytes or the
// deprecated WithCapacity) chooses eviction victims.
type EvictionPolicy = evict.Kind

const (
	// EvictLRU is exact per-shard least-recently-used (the default).
	EvictLRU = evict.LRU
	// EvictClock is the second-chance ring: the cheapest warm-hit touch
	// (one bool store, no list splice) at the price of approximate
	// recency ordering.
	EvictClock = evict.Clock
	// EvictCost is cost-aware sampled eviction: victims score by
	// bytes × staleness, so one huge cold blob doesn't outlive a
	// thousand small hot entries.
	EvictCost = evict.Cost
)

// ParseEvictionPolicy parses a policy name ("lru", "clock", "cost") as
// accepted by the daemons' -evict flag.
func ParseEvictionPolicy(s string) (EvictionPolicy, error) {
	return evict.ParseKind(s)
}

// WithEvictionPolicy selects the eviction policy of a bounded cache.
// Ignored when the cache is unbounded.
func WithEvictionPolicy(p EvictionPolicy) CacheOption {
	return func(o *cacheOptions) { o.core.Policy = p }
}

// WithAdmission enables doorkeeper admission control on a bounded
// cache: a never-before-seen key is served but not cached on its first
// sighting and admitted on its second, so scans of one-hit-wonder keys
// cannot flush the working set. Ignored when the cache is unbounded.
func WithAdmission() CacheOption {
	return func(o *cacheOptions) { o.core.Admission = true }
}

// WithCacheShards sets the number of lock stripes the cache's entry table
// and transaction-record table are split over, letting the hit path scale
// across cores instead of serializing on one mutex. 1 preserves the
// historical single-mutex semantics exactly (and makes per-shard LRU
// exactly global LRU); 0 (the default) picks runtime.GOMAXPROCS(0)
// stripes whether or not the cache is bounded — byte budgets are
// enforced per shard, so a memory bound no longer costs the striping.
// With more than one shard, a bounded cache's eviction is approximately
// — rather than exactly — global: each shard ranks only its own
// residents.
func WithCacheShards(n int) CacheOption {
	return func(o *cacheOptions) { o.core.Shards = n }
}

// WithMultiversion retains up to n committed versions per cache entry
// and serves each transaction the newest version that keeps it
// serializable — the TxCache technique the paper suggests combining with
// T-Cache (§VI). Values ≤ 1 disable it.
func WithMultiversion(n int) CacheOption {
	return func(o *cacheOptions) { o.core.Multiversion = n }
}

// WithClock substitutes the time source (e.g. a simulation clock).
func WithClock(c clock.Clock) CacheOption {
	return func(o *cacheOptions) { o.core.Clock = c }
}

// WithTxnGC bounds how long idle transaction records are kept before
// being garbage-collected (protects against clients that never finish).
func WithTxnGC(d time.Duration) CacheOption {
	return func(o *cacheOptions) { o.core.TxnGC = d }
}

// WithLossyLink routes invalidations through an unreliable asynchronous
// channel that drops a fraction of messages and delays the rest — the
// environment the paper targets. Without it, invalidations are delivered
// as the backend sends them (for *DB that is synchronous and reliable;
// for *Remote, whatever the network does).
func WithLossyLink(dropRate float64, delay, jitter time.Duration, seed int64) CacheOption {
	return func(o *cacheOptions) {
		o.lossy = true
		o.link = chaos.Config{DropRate: dropRate, BaseDelay: delay, Jitter: jitter, Seed: seed}
	}
}

// WithName names the cache's invalidation subscription. Names must be
// unique per backend; NewCache surfaces ErrDuplicateSubscriber on a
// clash. The default is unique within and across processes.
func WithName(name string) CacheOption {
	return func(o *cacheOptions) { o.name = name }
}

var _cacheSeq atomic.Uint64

// NewCache attaches a T-Cache to backend b and subscribes it to the
// backend's invalidation stream.
func NewCache(b Backend, opts ...CacheOption) (*Cache, error) {
	o := cacheOptions{}
	o.core.Backend = b
	o.core.Strategy = core.StrategyRetry
	for _, opt := range opts {
		opt(&o)
	}
	inner, err := core.New(o.core)
	if err != nil {
		return nil, err
	}
	clk := o.core.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	deliver := func(inv Invalidation) { inner.Invalidate(inv.Key, inv.Version) }
	sink := deliver
	if o.lossy {
		inj := chaos.New[Invalidation](clk, o.link)
		sink = inj.Wrap(deliver)
	}
	name := o.name
	if name == "" {
		// Unique across processes too: remote backends reject duplicates.
		name = fmt.Sprintf("cache-%d-%d", os.Getpid(), _cacheSeq.Add(1))
	}
	unsub, err := b.Subscribe(name, sink)
	if err != nil {
		inner.Close()
		return nil, fmt.Errorf("tcache: subscribe %q: %w", name, err)
	}
	c := &Cache{inner: inner, unsub: unsub}
	if t := o.telemetry; t != nil {
		c.readTxnHist = t.readTxn
		c.updateHist = t.update
		// Backends that own a wire client (Remote, cluster) time their
		// round trips into the same telemetry set.
		if rt, ok := b.(roundTripSetter); ok {
			rt.setRoundTripHistogram(t.roundTrip)
		}
	}
	return c, nil
}

// Close detaches the cache from the invalidation stream and shuts it
// down.
func (c *Cache) Close() {
	c.unsub()
	c.inner.Close()
}

// Core exposes the underlying cache for advanced integrations (metrics,
// serving it over the wire).
func (c *Cache) Core() *core.Cache { return c.inner }

// ReadTx is a read-only transaction handle passed to Cache.ReadTxn.
type ReadTx struct {
	cache *core.Cache
	id    kv.TxnID
	err   error
}

// Get reads key through the cache within the transaction. ctx bounds the
// backend fetch on a miss. After the transaction aborts, further reads
// return the abort error.
//
// The returned Value is shared with the cache (copy-on-write: updates
// replace whole items rather than mutating served slices) and must be
// treated as read-only; Clone it before modifying.
func (t *ReadTx) Get(ctx context.Context, key Key) (Value, error) {
	if t.err != nil && errors.Is(t.err, ErrTxnAborted) {
		return nil, t.err
	}
	val, err := t.cache.Read(ctx, t.id, key, false)
	if err != nil && errors.Is(err, ErrTxnAborted) {
		t.err = err
	}
	return val, err
}

// GetMulti reads keys, in order, within the transaction — semantically
// identical to one Get per key, but all keys missing from the cache are
// fetched from the backend in a single batch request (one round trip to a
// remote database instead of one per key). Every read is validated
// individually; the first error stops the batch.
//
// Like Get, the returned Values are shared with the cache and must be
// treated as read-only; Clone before modifying.
func (t *ReadTx) GetMulti(ctx context.Context, keys ...Key) ([]Value, error) {
	if t.err != nil && errors.Is(t.err, ErrTxnAborted) {
		return nil, t.err
	}
	vals, err := t.cache.ReadMulti(ctx, t.id, keys, false)
	if err != nil && errors.Is(err, ErrTxnAborted) {
		t.err = err
	}
	return vals, err
}

// ReadTxn runs fn as one read-only transaction against the cache. All
// Gets inside fn are validated against each other; if the cache detects
// that they cannot belong to one serializable snapshot the transaction
// aborts and ReadTxn returns an error wrapping ErrTxnAborted (the caller
// may simply retry). A cache hit never contacts the database.
//
// Cancelling ctx aborts the transaction: the in-flight read returns
// ctx.Err(), the transaction record is released, and ReadTxn returns the
// context's error.
func (c *Cache) ReadTxn(ctx context.Context, fn func(tx *ReadTx) error) error {
	if c.readTxnHist == nil {
		return c.readTxn(ctx, fn)
	}
	start := time.Now()
	err := c.readTxn(ctx, fn)
	c.readTxnHist.ObserveSince(start)
	return err
}

func (c *Cache) readTxn(ctx context.Context, fn func(tx *ReadTx) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	id := kv.TxnID(c.seq.Add(1))
	tx := &ReadTx{cache: c.inner, id: id}
	err := fn(tx)
	if tx.err != nil {
		// Already aborted by the cache.
		return tx.err
	}
	if err == nil {
		// fn may have swallowed a cancellation; the transaction must not
		// commit as if the read set were complete.
		err = ctx.Err()
	}
	if err != nil {
		c.inner.Abort(id)
		return err
	}
	c.inner.Commit(id)
	return nil
}

// Get performs a plain, non-transactional cache read. The returned
// Value is shared with the cache and must be treated as read-only;
// Clone it before modifying.
func (c *Cache) Get(ctx context.Context, key Key) (Value, error) {
	return c.inner.Get(ctx, key)
}

// Invalidate applies an invalidation upcall directly (for callers that
// bridge their own delivery channel).
func (c *Cache) Invalidate(key Key, version Version) {
	c.inner.Invalidate(key, version)
}

// Stats is a point-in-time snapshot of cache counters.
type Stats = core.MetricsSnapshot

// Stats returns the cache's counters.
func (c *Cache) Stats() Stats { return c.inner.Metrics() }
