// Package tcache is the public API of this repository: an embeddable
// implementation of T-Cache, the transactional edge cache of
//
//	Eyal, Birman, van Renesse — "Cache Serializability: Reducing
//	Inconsistency in Edge Transactions", ICDCS 2015.
//
// It bundles a serializable transactional key-value database (the
// backend), one or more T-Cache instances fed by asynchronous — and
// optionally lossy — invalidation streams, and a closure-based
// transaction API:
//
//	db := tcache.OpenDB()
//	defer db.Close()
//	cache, _ := tcache.NewCache(db, tcache.WithStrategy(tcache.StrategyRetry))
//	defer cache.Close()
//
//	_ = db.Update(func(tx *tcache.Tx) error {
//	    tx.Set("train", []byte("in stock"))
//	    tx.Set("tracks", []byte("in stock"))
//	    return nil
//	})
//
//	err := cache.ReadTxn(func(tx *tcache.ReadTx) error {
//	    train, _ := tx.Get("train")
//	    tracks, _ := tx.Get("tracks")
//	    _ = train
//	    _ = tracks
//	    return nil
//	})
//	if errors.Is(err, tcache.ErrTxnAborted) {
//	    // the cache detected that the reads were not serializable
//	}
//
// Read-only transactions served by the cache never contact the database
// on hits; the cache detects most non-serializable read sets locally
// using the bounded dependency lists the database maintains (see
// DESIGN.md for the protocol).
package tcache

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"tcache/internal/chaos"
	"tcache/internal/clock"
	"tcache/internal/core"
	"tcache/internal/db"
	"tcache/internal/kv"
	"tcache/internal/wal"
)

// Key identifies an object.
type Key = kv.Key

// Value is an opaque object payload.
type Value = kv.Value

// Version is a database commit version.
type Version = kv.Version

// Strategy selects the cache's reaction to a detected inconsistency.
type Strategy = core.Strategy

// Strategies (§III-B of the paper).
const (
	// StrategyAbort aborts the observing transaction.
	StrategyAbort = core.StrategyAbort
	// StrategyEvict also evicts the stale cache entry.
	StrategyEvict = core.StrategyEvict
	// StrategyRetry additionally re-reads through to the database when
	// the stale object is the one currently being read.
	StrategyRetry = core.StrategyRetry
)

// Errors surfaced by the public API.
var (
	// ErrTxnAborted reports that a read-only transaction observed (or
	// was about to observe) non-serializable data and was aborted.
	ErrTxnAborted = core.ErrTxnAborted
	// ErrNotFound reports a key absent from both cache and database.
	ErrNotFound = core.ErrNotFound
	// ErrConflict reports an update-transaction concurrency conflict;
	// DB.Update retries these automatically.
	ErrConflict = db.ErrConflict
)

// DB is the transactional backend database.
type DB struct {
	inner *db.DB
}

// DBOption configures OpenDB.
type DBOption func(*db.Config)

// WithShards sets the number of two-phase-commit participants the key
// space is partitioned over (default 1).
func WithShards(n int) DBOption {
	return func(c *db.Config) { c.Shards = n }
}

// WithDepListBound sets the dependency-list length k the database
// maintains per object (default 5, the paper's setting). Longer lists
// detect more inconsistencies at slightly higher metadata cost; 0
// disables dependency tracking.
func WithDepListBound(k int) DBOption {
	return func(c *db.Config) { c.DepBound = k }
}

// WithLockTimeout bounds update-transaction lock waits.
func WithLockTimeout(d time.Duration) DBOption {
	return func(c *db.Config) { c.LockTimeout = d }
}

// OpenDB creates an in-process backend database.
func OpenDB(opts ...DBOption) *DB {
	cfg := db.Config{DepBound: 5, Shards: 1}
	for _, o := range opts {
		o(&cfg)
	}
	return &DB{inner: db.Open(cfg)}
}

// OpenDurableDB creates (or recovers) a database whose commits are made
// durable in a write-ahead log at path: values, versions and dependency
// lists all survive restarts. Compact the log periodically with
// Backend().Compact().
func OpenDurableDB(path string, opts ...DBOption) (*DB, error) {
	cfg := db.Config{DepBound: 5, Shards: 1}
	for _, o := range opts {
		o(&cfg)
	}
	inner, err := db.Recover(cfg, path, wal.Options{})
	if err != nil {
		return nil, err
	}
	return &DB{inner: inner}, nil
}

// Close shuts the database down.
func (d *DB) Close() { d.inner.Close() }

// Backend exposes the underlying database for advanced integrations
// (e.g. serving it over the wire with the transport package).
func (d *DB) Backend() *db.DB { return d.inner }

// Tx is an update transaction handle passed to DB.Update.
type Tx struct {
	txn *db.Txn
}

// Get reads key within the update transaction.
func (t *Tx) Get(key Key) (Value, bool, error) {
	item, found, err := t.txn.Read(key)
	if err != nil {
		return nil, false, err
	}
	return item.Value, found, nil
}

// Set buffers a write of key within the update transaction.
func (t *Tx) Set(key Key, value Value) error {
	return t.txn.Write(key, value)
}

// Update runs fn inside a serializable update transaction, committing on
// nil return and rolling back on error. Concurrency conflicts (deadlock
// victims, lock timeouts) are retried transparently.
func (d *DB) Update(fn func(tx *Tx) error) error {
	for {
		txn := d.inner.Begin()
		err := fn(&Tx{txn: txn})
		if err != nil {
			if abortErr := txn.Abort(); abortErr != nil && !errors.Is(abortErr, db.ErrTxnDone) {
				return fmt.Errorf("tcache: rollback: %w", abortErr)
			}
			if errors.Is(err, ErrConflict) {
				continue
			}
			return err
		}
		_, err = txn.Commit()
		switch {
		case err == nil:
			return nil
		case errors.Is(err, ErrConflict):
			continue
		default:
			return err
		}
	}
}

// Get performs a lock-free single-entry read of the latest committed
// value directly from the database.
func (d *DB) Get(key Key) (Value, bool) {
	item, ok := d.inner.Get(key)
	return item.Value, ok
}

// Pin declares always-retained dependencies: owner's stored dependency
// list will always include entries for deps at their current committed
// versions, regardless of the LRU bound (the paper's §VII suggestion —
// e.g. pin every album picture to the album's ACL object).
func (d *DB) Pin(owner Key, deps ...Key) { d.inner.Pin(owner, deps...) }

// Unpin removes previously pinned dependencies of owner.
func (d *DB) Unpin(owner Key, deps ...Key) { d.inner.Unpin(owner, deps...) }

// Cache is a T-Cache instance attached to a DB.
type Cache struct {
	inner *core.Cache
	unsub func()
	seq   atomic.Uint64
}

// cacheOptions collects NewCache settings.
type cacheOptions struct {
	core core.Config
	link chaos.Config
	// lossy marks that the invalidation link should be routed through a
	// chaos injector instead of delivered synchronously.
	lossy bool
	name  string
}

// CacheOption configures NewCache.
type CacheOption func(*cacheOptions)

// WithStrategy sets the inconsistency reaction (default StrategyRetry,
// the paper's best-performing configuration).
func WithStrategy(s Strategy) CacheOption {
	return func(o *cacheOptions) { o.core.Strategy = s }
}

// WithTTL bounds the life span of cache entries (0 = none).
func WithTTL(ttl time.Duration) CacheOption {
	return func(o *cacheOptions) { o.core.TTL = ttl }
}

// WithCapacity bounds the number of cached entries (0 = unbounded); the
// least recently used entry is evicted when full.
func WithCapacity(n int) CacheOption {
	return func(o *cacheOptions) { o.core.Capacity = n }
}

// WithCacheShards sets the number of lock stripes the cache's entry table
// and transaction-record table are split over, letting the hit path scale
// across cores instead of serializing on one mutex. 1 preserves the
// historical single-mutex semantics exactly; 0 (the default) picks
// runtime.GOMAXPROCS(0) stripes for unbounded caches and 1 when a
// Capacity is set (exact global LRU needs a single shard). With more than
// one shard and a Capacity, the bound is enforced per shard, making
// eviction approximately — rather than exactly — global LRU.
func WithCacheShards(n int) CacheOption {
	return func(o *cacheOptions) { o.core.Shards = n }
}

// WithMultiversion retains up to n committed versions per cache entry
// and serves each transaction the newest version that keeps it
// serializable — the TxCache technique the paper suggests combining with
// T-Cache (§VI). Values ≤ 1 disable it.
func WithMultiversion(n int) CacheOption {
	return func(o *cacheOptions) { o.core.Multiversion = n }
}

// WithClock substitutes the time source (e.g. a simulation clock).
func WithClock(c clock.Clock) CacheOption {
	return func(o *cacheOptions) { o.core.Clock = c }
}

// WithTxnGC bounds how long idle transaction records are kept before
// being garbage-collected (protects against clients that never finish).
func WithTxnGC(d time.Duration) CacheOption {
	return func(o *cacheOptions) { o.core.TxnGC = d }
}

// WithLossyLink routes invalidations through an unreliable asynchronous
// channel that drops a fraction of messages and delays the rest — the
// environment the paper targets. Without it, invalidations are delivered
// synchronously (a perfectly reliable link).
func WithLossyLink(dropRate float64, delay, jitter time.Duration, seed int64) CacheOption {
	return func(o *cacheOptions) {
		o.lossy = true
		o.link = chaos.Config{DropRate: dropRate, BaseDelay: delay, Jitter: jitter, Seed: seed}
	}
}

// WithName names the cache's invalidation subscription (useful when
// attaching several caches to one DB).
func WithName(name string) CacheOption {
	return func(o *cacheOptions) { o.name = name }
}

var _cacheSeq atomic.Uint64

// NewCache attaches a T-Cache to d and subscribes it to the database's
// invalidation stream.
func NewCache(d *DB, opts ...CacheOption) (*Cache, error) {
	o := cacheOptions{}
	o.core.Backend = d.inner
	o.core.Strategy = core.StrategyRetry
	for _, opt := range opts {
		opt(&o)
	}
	inner, err := core.New(o.core)
	if err != nil {
		return nil, err
	}
	clk := o.core.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	deliver := func(inv db.Invalidation) { inner.Invalidate(inv.Key, inv.Version) }
	sink := db.InvalidationSink(deliver)
	if o.lossy {
		inj := chaos.New[db.Invalidation](clk, o.link)
		sink = inj.Wrap(deliver)
	}
	name := o.name
	if name == "" {
		name = fmt.Sprintf("cache-%d", _cacheSeq.Add(1))
	}
	unsub := d.inner.Subscribe(name, sink)
	return &Cache{inner: inner, unsub: unsub}, nil
}

// Close detaches the cache from the invalidation stream and shuts it
// down.
func (c *Cache) Close() {
	c.unsub()
	c.inner.Close()
}

// Core exposes the underlying cache for advanced integrations (metrics,
// serving it over the wire).
func (c *Cache) Core() *core.Cache { return c.inner }

// ReadTx is a read-only transaction handle passed to Cache.ReadTxn.
type ReadTx struct {
	cache *core.Cache
	id    kv.TxnID
	err   error
}

// Get reads key through the cache within the transaction. After the
// transaction aborts, further reads return the abort error.
func (t *ReadTx) Get(key Key) (Value, error) {
	if t.err != nil && errors.Is(t.err, ErrTxnAborted) {
		return nil, t.err
	}
	val, err := t.cache.Read(t.id, key, false)
	if err != nil && errors.Is(err, ErrTxnAborted) {
		t.err = err
	}
	return val, err
}

// ReadTxn runs fn as one read-only transaction against the cache. All
// Gets inside fn are validated against each other; if the cache detects
// that they cannot belong to one serializable snapshot the transaction
// aborts and ReadTxn returns an error wrapping ErrTxnAborted (the caller
// may simply retry). A cache hit never contacts the database.
func (c *Cache) ReadTxn(fn func(tx *ReadTx) error) error {
	id := kv.TxnID(c.seq.Add(1))
	tx := &ReadTx{cache: c.inner, id: id}
	err := fn(tx)
	if tx.err != nil {
		// Already aborted by the cache.
		return tx.err
	}
	if err != nil {
		c.inner.Abort(id)
		return err
	}
	c.inner.Commit(id)
	return nil
}

// Get performs a plain, non-transactional cache read.
func (c *Cache) Get(key Key) (Value, error) {
	return c.inner.Get(key)
}

// Invalidate applies an invalidation upcall directly (for callers that
// bridge their own delivery channel).
func (c *Cache) Invalidate(key Key, version Version) {
	c.inner.Invalidate(key, version)
}

// Stats is a point-in-time snapshot of cache counters.
type Stats = core.MetricsSnapshot

// Stats returns the cache's counters.
func (c *Cache) Stats() Stats { return c.inner.Metrics() }
