package tcache_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tcache"
)

// remoteRig is the paper's deployment over loopback, end to end through
// the public API: a DB served over TCP (tdbd-style), a Remote dialed to
// it, and a T-Cache attached to the Remote.
type remoteRig struct {
	db     *tcache.DB
	addr   string
	remote *tcache.Remote
	cache  *tcache.Cache
}

func newRemoteRig(t *testing.T, opts ...tcache.CacheOption) *remoteRig {
	t.Helper()
	ctx := context.Background()
	db := tcache.OpenDB(tcache.WithDepListBound(5))
	t.Cleanup(func() { db.Close() })
	addr, stop, err := tcache.ServeDB(db, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)
	remote, err := tcache.Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(remote.Close)
	cache, err := tcache.NewCache(remote, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cache.Close)
	return &remoteRig{db: db, addr: addr, remote: remote, cache: cache}
}

// tearSnapshot builds the canonical inconsistency over the wire: the
// cache holds b at its old version (all invalidations dropped), while
// the database rewrites a and b in one transaction.
func (r *remoteRig) tearSnapshot(t *testing.T) {
	t.Helper()
	ctx := context.Background()
	for _, k := range []tcache.Key{"a", "b"} {
		k := k
		if err := r.db.Update(ctx, func(tx *tcache.Tx) error {
			return tx.Set(k, tcache.Value("v0-"+string(k)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.cache.Get(ctx, "b"); err != nil { // cache b@v0
		t.Fatal(err)
	}
	if err := r.db.Update(ctx, func(tx *tcache.Tx) error {
		for _, k := range []tcache.Key{"a", "b"} {
			if _, _, err := tx.Get(ctx, k); err != nil {
				return err
			}
		}
		for _, k := range []tcache.Key{"a", "b"} {
			if err := tx.Set(k, tcache.Value("v1-"+string(k))); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// readAB runs the torn read-only transaction (fresh a, stale cached b).
func (r *remoteRig) readAB(t *testing.T) (b tcache.Value, err error) {
	t.Helper()
	ctx := context.Background()
	err = r.cache.ReadTxn(ctx, func(tx *tcache.ReadTx) error {
		if _, err := tx.Get(ctx, "a"); err != nil {
			return err
		}
		var gerr error
		b, gerr = tx.Get(ctx, "b")
		return gerr
	})
	return b, err
}

// TestRemoteSerializabilitySuite runs the abort/evict/retry strategy
// contract against a Dial-attached remote backend: the same guarantees
// the embedded cache gives, over the wire.
func TestRemoteSerializabilitySuite(t *testing.T) {
	t.Run("abort", func(t *testing.T) {
		r := newRemoteRig(t,
			tcache.WithStrategy(tcache.StrategyAbort),
			tcache.WithLossyLink(1.0, 0, 0, 1))
		r.tearSnapshot(t)
		if _, err := r.readAB(t); !errors.Is(err, tcache.ErrTxnAborted) {
			t.Fatalf("torn snapshot over the wire = %v, want ErrTxnAborted", err)
		}
		if got := r.cache.Core().ActiveTxns(); got != 0 {
			t.Fatalf("leaked txn records: %d", got)
		}
	})

	t.Run("evict", func(t *testing.T) {
		r := newRemoteRig(t,
			tcache.WithStrategy(tcache.StrategyEvict),
			tcache.WithLossyLink(1.0, 0, 0, 1))
		r.tearSnapshot(t)
		if _, err := r.readAB(t); !errors.Is(err, tcache.ErrTxnAborted) {
			t.Fatalf("first attempt = %v, want ErrTxnAborted", err)
		}
		// EVICT removed the stale entry: the retry reads fresh data.
		b, err := r.readAB(t)
		if err != nil || string(b) != "v1-b" {
			t.Fatalf("retry after EVICT = %q, %v", b, err)
		}
	})

	t.Run("retry", func(t *testing.T) {
		r := newRemoteRig(t,
			tcache.WithStrategy(tcache.StrategyRetry),
			tcache.WithLossyLink(1.0, 0, 0, 1))
		r.tearSnapshot(t)
		b, err := r.readAB(t)
		if err != nil {
			t.Fatalf("RETRY should have healed over the wire: %v", err)
		}
		if string(b) != "v1-b" {
			t.Fatalf("b = %q, want v1-b", b)
		}
	})

	t.Run("getmulti", func(t *testing.T) {
		// The same torn snapshot through the batched read path.
		r := newRemoteRig(t,
			tcache.WithStrategy(tcache.StrategyRetry),
			tcache.WithLossyLink(1.0, 0, 0, 1))
		r.tearSnapshot(t)
		ctx := context.Background()
		var page []tcache.Value
		err := r.cache.ReadTxn(ctx, func(tx *tcache.ReadTx) error {
			var gerr error
			page, gerr = tx.GetMulti(ctx, "a", "b")
			return gerr
		})
		if err != nil {
			t.Fatalf("GetMulti over the wire = %v", err)
		}
		if string(page[0]) != "v1-a" || string(page[1]) != "v1-b" {
			t.Fatalf("page = %q", page)
		}
	})
}

// TestRemoteGetMultiBatchesMisses asserts the wire-level batching: N cold
// keys are prefetched in one backend batch request.
func TestRemoteGetMultiBatchesMisses(t *testing.T) {
	r := newRemoteRig(t)
	ctx := context.Background()
	keys := make([]tcache.Key, 8)
	for i := range keys {
		keys[i] = tcache.Key(fmt.Sprintf("cold%d", i))
		k := keys[i]
		if err := r.db.Update(ctx, func(tx *tcache.Tx) error {
			return tx.Set(k, tcache.Value("v"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.cache.ReadTxn(ctx, func(tx *tcache.ReadTx) error {
		vals, err := tx.GetMulti(ctx, keys...)
		if err != nil {
			return err
		}
		if len(vals) != len(keys) {
			return fmt.Errorf("got %d values", len(vals))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s := r.cache.Stats()
	if s.BatchPrefetches != 1 || s.BatchPrefetchedKeys != 8 {
		t.Fatalf("batch stats = prefetches=%d keys=%d, want 1/8", s.BatchPrefetches, s.BatchPrefetchedKeys)
	}
}

// TestRemoteUpdateRoundTrip covers the unified Remote.Update: a closure
// committed in one validated round trip, visible to the cache via
// invalidation — and through the raw ValidatedUpdate capability, whose
// commit version must be non-zero.
func TestRemoteUpdateRoundTrip(t *testing.T) {
	r := newRemoteRig(t)
	ctx := context.Background()
	if err := r.remote.Update(ctx, func(tx *tcache.Tx) error {
		return tx.Set("k", tcache.Value("v1"))
	}); err != nil {
		t.Fatal(err)
	}
	val, err := r.cache.Get(ctx, "k")
	if err != nil || string(val) != "v1" {
		t.Fatalf("cache read of remote update = %q, %v", val, err)
	}
	v, err := r.remote.ValidatedUpdate(ctx, nil, []tcache.KeyValue{{Key: "k", Value: tcache.Value("v2")}})
	if err != nil {
		t.Fatal(err)
	}
	if v.IsZero() {
		t.Fatal("zero commit version")
	}
}

// TestReadTxnCancelReleasesRecord cancels a ReadTxn's ctx mid-read and
// proves the transaction record is released (no leak for the idle-txn GC
// to report) and the error is the context's.
func TestReadTxnCancelReleasesRecord(t *testing.T) {
	r := newRemoteRig(t, tcache.WithTxnGC(50*time.Millisecond))
	ctx := context.Background()
	if err := r.db.Update(ctx, func(tx *tcache.Tx) error {
		return tx.Set("k", tcache.Value("v"))
	}); err != nil {
		t.Fatal(err)
	}

	rctx, cancel := context.WithCancel(ctx)
	err := r.cache.ReadTxn(rctx, func(tx *tcache.ReadTx) error {
		if _, err := tx.Get(rctx, "k"); err != nil {
			return err
		}
		cancel() // the ctx dies mid-transaction
		_, err := tx.Get(rctx, "k2")
		return err
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ReadTxn = %v, want context.Canceled", err)
	}
	if got := r.cache.Core().ActiveTxns(); got != 0 {
		t.Fatalf("cancelled ReadTxn leaked %d txn records", got)
	}
	if got := r.cache.Stats().TxnsGCed; got != 0 {
		t.Fatalf("GC collected %d records; cancellation should have released them first", got)
	}

	// A swallowed cancellation must not commit a partial read set either.
	rctx2, cancel2 := context.WithCancel(ctx)
	err = r.cache.ReadTxn(rctx2, func(tx *tcache.ReadTx) error {
		if _, err := tx.Get(rctx2, "k"); err != nil {
			return err
		}
		cancel2()
		return nil // fn ignores the cancellation
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("swallowed cancellation = %v, want context.Canceled", err)
	}
	if got := r.cache.Core().ActiveTxns(); got != 0 {
		t.Fatalf("swallowed cancellation leaked %d txn records", got)
	}
	if got := r.cache.Stats().TxnsCommitted; got != 0 {
		t.Fatalf("cancelled transaction committed (%d commits)", got)
	}
}

// TestUpdateCancelUnblocksLockWait wedges an update behind a held lock
// through the public API and cancels it: the call must return
// context.Canceled promptly and leave the lock queue clean.
func TestUpdateCancelUnblocksLockWait(t *testing.T) {
	d := tcache.OpenDB()
	defer d.Close()
	ctx := context.Background()
	if err := d.Update(ctx, func(tx *tcache.Tx) error {
		return tx.Set("k", tcache.Value("v0"))
	}); err != nil {
		t.Fatal(err)
	}

	hold := make(chan struct{})
	held := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = d.Update(ctx, func(tx *tcache.Tx) error {
			if err := tx.Set("k", tcache.Value("held")); err != nil {
				return err
			}
			close(held)
			<-hold // keep the exclusive lock until released
			return nil
		})
	}()
	<-held

	wctx, cancel := context.WithCancel(ctx)
	errc := make(chan error, 1)
	go func() {
		errc <- d.Update(wctx, func(tx *tcache.Tx) error {
			return tx.Set("k", tcache.Value("blocked"))
		})
	}()
	time.Sleep(20 * time.Millisecond) // let the update queue on the lock
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Update = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Update never unblocked from the lock wait")
	}

	close(hold)
	wg.Wait()
	// The queue is clean: a fresh update acquires the lock normally.
	if err := d.Update(ctx, func(tx *tcache.Tx) error {
		return tx.Set("k", tcache.Value("after"))
	}); err != nil {
		t.Fatalf("post-cancel update = %v", err)
	}
	if v, ok, _ := d.Get(ctx, "k"); !ok || string(v) != "after" {
		t.Fatalf("final value = %q, %v", v, ok)
	}
}

// TestUpdateConflictBackoffHonorsCtx forces a deadlock-prone workload to
// exercise the jittered-backoff retry loop, then checks a cancelled ctx
// stops a conflict-looping update.
func TestUpdateConflictBackoffHonorsCtx(t *testing.T) {
	d := tcache.OpenDB(tcache.WithLockTimeout(5 * time.Millisecond))
	defer d.Close()
	ctx := context.Background()
	if err := d.Update(ctx, func(tx *tcache.Tx) error {
		return tx.Set("k", tcache.Value("v0"))
	}); err != nil {
		t.Fatal(err)
	}

	// Hold the lock forever (from this test's perspective).
	hold := make(chan struct{})
	held := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = d.Update(ctx, func(tx *tcache.Tx) error {
			if err := tx.Set("k", tcache.Value("held")); err != nil {
				return err
			}
			close(held)
			<-hold
			return nil
		})
	}()
	<-held

	// The contender hits ErrConflict (lock timeout) repeatedly; the retry
	// loop backs off until the ctx deadline stops it.
	wctx, cancel := context.WithTimeout(ctx, 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := d.Update(wctx, func(tx *tcache.Tx) error {
		return tx.Set("k", tcache.Value("contender"))
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("conflict-looping update = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("retry loop ignored ctx for %v", elapsed)
	}
	close(hold)
	wg.Wait()
}

// TestNewCacheDuplicateNameSurfaces covers the Subscribe bugfix through
// the public constructor, on both backends.
func TestNewCacheDuplicateNameSurfaces(t *testing.T) {
	t.Run("local", func(t *testing.T) {
		d := tcache.OpenDB()
		defer d.Close()
		c1, err := tcache.NewCache(d, tcache.WithName("edge"))
		if err != nil {
			t.Fatal(err)
		}
		defer c1.Close()
		if _, err := tcache.NewCache(d, tcache.WithName("edge")); !errors.Is(err, tcache.ErrDuplicateSubscriber) {
			t.Fatalf("duplicate WithName = %v, want ErrDuplicateSubscriber", err)
		}
		// Closing the first frees the name.
		c1.Close()
		c3, err := tcache.NewCache(d, tcache.WithName("edge"))
		if err != nil {
			t.Fatalf("reuse after Close = %v", err)
		}
		c3.Close()
	})

	t.Run("remote", func(t *testing.T) {
		r := newRemoteRig(t, tcache.WithName("edge"))
		ctx := context.Background()
		remote2, err := tcache.Dial(ctx, r.addr)
		if err != nil {
			t.Fatal(err)
		}
		defer remote2.Close()
		if _, err := tcache.NewCache(remote2, tcache.WithName("edge")); err == nil {
			t.Fatal("duplicate remote subscriber name accepted")
		}
	})
}
