package tcache_test

// Tests for the unified write path: one Updater API across *DB,
// *Remote, *Cache, and *ClusterCache, optimistic validation over the
// wire, conflict-retry convergence, and the edge's read-your-writes
// guarantee (self-invalidation locally, write-mark floors across the
// cluster tier).

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"tcache"
	"tcache/internal/cluster"
	"tcache/internal/core"
	"tcache/internal/db"
	"tcache/internal/kv"
	"tcache/internal/transport"
)

// increment is the canonical read-modify-write closure: parse the
// counter, add one, write it back.
func increment(ctx context.Context, key tcache.Key) func(tx *tcache.Tx) error {
	return func(tx *tcache.Tx) error {
		raw, found, err := tx.Get(ctx, key)
		if err != nil {
			return err
		}
		n := 0
		if found {
			if n, err = strconv.Atoi(string(raw)); err != nil {
				return err
			}
		}
		return tx.Set(key, tcache.Value(strconv.Itoa(n+1)))
	}
}

// TestUpdaterAcrossBackends drives the SAME closure through all three
// shipping Updater implementations — in-process DB, Remote over the
// wire, and a cache on top of the Remote — and checks each commit is
// observed by a subsequent read on the same handle.
func TestUpdaterAcrossBackends(t *testing.T) {
	r := newRemoteRig(t)
	ctx := context.Background()

	for _, tc := range []struct {
		name string
		up   tcache.Updater
		get  func() (tcache.Value, error)
	}{
		{"db", r.db, func() (tcache.Value, error) {
			v, _, err := r.db.Get(ctx, "counter")
			return v, err
		}},
		{"remote", r.remote, func() (tcache.Value, error) {
			item, _, err := r.remote.ReadItem(ctx, "counter")
			return item.Value, err
		}},
		{"cache", r.cache, func() (tcache.Value, error) {
			return r.cache.Get(ctx, "counter")
		}},
	} {
		if err := tc.up.Update(ctx, increment(ctx, "counter")); err != nil {
			t.Fatalf("%s: Update = %v", tc.name, err)
		}
		if v, err := tc.get(); err != nil {
			t.Fatalf("%s: read after update = %v", tc.name, err)
		} else if string(v) == "" {
			t.Fatalf("%s: read after update empty", tc.name)
		}
	}
	// Three increments across three tiers, one shared counter.
	v, _, err := r.db.Get(ctx, "counter")
	if err != nil || string(v) != "3" {
		t.Fatalf("counter = %q, %v, want 3", v, err)
	}
}

// TestRemoteOCCConflictRetryConverges collides two remote updaters on
// one key: every increment must survive — lost updates would show up as
// a short count. Run under -race in CI, this also shakes the
// multiplexed wire path of the validated-update op.
func TestRemoteOCCConflictRetryConverges(t *testing.T) {
	r := newRemoteRig(t)
	ctx := context.Background()
	if err := r.remote.Update(ctx, func(tx *tcache.Tx) error {
		return tx.Set("n", tcache.Value("0"))
	}); err != nil {
		t.Fatal(err)
	}

	remote2, err := tcache.Dial(ctx, r.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote2.Close()

	const perWorker = 20
	var wg sync.WaitGroup
	errc := make(chan error, 2)
	for _, up := range []tcache.Updater{r.remote, remote2} {
		up := up
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := up.Update(ctx, increment(ctx, "n")); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	item, _, err := r.remote.ReadItem(ctx, "n")
	if err != nil {
		t.Fatal(err)
	}
	if string(item.Value) != strconv.Itoa(2*perWorker) {
		t.Fatalf("counter = %q, want %d (lost updates under OCC conflict retry)", item.Value, 2*perWorker)
	}
}

// TestRemoteUpdateCancelMidCommit wedges a remote commit behind a held
// database lock and cancels its ctx: the call must return promptly with
// the context error, and the system must stay clean — once the lock
// holder releases, a fresh update commits normally.
func TestRemoteUpdateCancelMidCommit(t *testing.T) {
	r := newRemoteRig(t)
	ctx := context.Background()
	if err := r.db.Update(ctx, func(tx *tcache.Tx) error {
		return tx.Set("k", tcache.Value("v0"))
	}); err != nil {
		t.Fatal(err)
	}

	hold := make(chan struct{})
	held := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = r.db.Update(ctx, func(tx *tcache.Tx) error {
			if err := tx.Set("k", tcache.Value("held")); err != nil {
				return err
			}
			close(held)
			<-hold // keep the exclusive lock
			return nil
		})
	}()
	<-held

	wctx, cancel := context.WithCancel(ctx)
	errc := make(chan error, 1)
	go func() {
		errc <- r.remote.Update(wctx, func(tx *tcache.Tx) error {
			return tx.Set("k", tcache.Value("blocked"))
		})
	}()
	time.Sleep(20 * time.Millisecond) // let the commit queue on the server-side lock
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled remote Update = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled remote Update never returned")
	}

	close(hold)
	wg.Wait()
	// Clean release: a fresh update acquires the lock and commits.
	cctx, ccancel := context.WithTimeout(ctx, 5*time.Second)
	defer ccancel()
	if err := r.remote.Update(cctx, func(tx *tcache.Tx) error {
		return tx.Set("k", tcache.Value("after"))
	}); err != nil {
		t.Fatalf("post-cancel update = %v", err)
	}
	if item, ok, _ := r.remote.ReadItem(ctx, "k"); !ok || string(item.Value) != "after" {
		t.Fatalf("final value = %q, %v", item.Value, ok)
	}
}

// TestCacheUpdateReadYourWritesLossyLink is the headline edge guarantee:
// with EVERY invalidation dropped, a cache that commits through Update
// still reads its own writes immediately — the self-invalidation applied
// at commit replaces the asynchronous stream for the writer's own keys.
// It also exercises conflict healing: the cache's stale snapshot is
// rejected by validation, evicted, and the retry commits against fresh
// reads.
func TestCacheUpdateReadYourWritesLossyLink(t *testing.T) {
	ctx := context.Background()
	d := tcache.OpenDB(tcache.WithDepListBound(5))
	defer d.Close()
	// Drop rate 1.0: the invalidation stream delivers nothing, ever.
	c, err := tcache.NewCache(d, tcache.WithLossyLink(1.0, 0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := d.Update(ctx, func(tx *tcache.Tx) error {
		return tx.Set("k", tcache.Value("old"))
	}); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Get(ctx, "k"); err != nil || string(v) != "old" {
		t.Fatalf("warmup read = %q, %v", v, err)
	}
	// The database moves on; the cache hears nothing and stays stale.
	if err := d.Update(ctx, func(tx *tcache.Tx) error {
		return tx.Set("k", tcache.Value("mid"))
	}); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Get(ctx, "k"); string(v) != "old" {
		t.Fatalf("lossy-link cache should still serve \"old\", got %q", v)
	}

	// Update through the cache: the first attempt reads the stale "old"
	// snapshot, validation rejects it, the conflict heals the cache, and
	// the retry reads "mid" and commits "mid+new".
	if err := c.Update(ctx, func(tx *tcache.Tx) error {
		cur, _, err := tx.Get(ctx, "k")
		if err != nil {
			return err
		}
		return tx.Set("k", append(cur.Clone(), []byte("+new")...))
	}); err != nil {
		t.Fatal(err)
	}

	// Read-your-writes, instantly, with invalidations still dark.
	if v, err := c.Get(ctx, "k"); err != nil || string(v) != "mid+new" {
		t.Fatalf("read after Update = %q, %v, want \"mid+new\"", v, err)
	}
	if err := c.ReadTxn(ctx, func(tx *tcache.ReadTx) error {
		v, err := tx.Get(ctx, "k")
		if err != nil {
			return err
		}
		if string(v) != "mid+new" {
			return fmt.Errorf("ReadTxn after Update = %q", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestClusterUpdateFloorsStaleNode is the cluster write-then-read floor
// interaction: the client commits through one edge node while the
// written key's HOME node still caches the old value (its invalidation
// link is silent). The router's write mark must floor the next read —
// routed to that stale home node — forcing it to refetch from the
// database instead of serving the client data older than its own
// commit.
func TestClusterUpdateFloorsStaleNode(t *testing.T) {
	ctx := context.Background()
	d := tcache.OpenDB(tcache.WithDepListBound(5))
	defer d.Close()
	dbAddr, stopDB, err := tcache.ServeDB(d, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stopDB()

	// Two mid-tier nodes with NO invalidation bridge: their caches go
	// stale silently, the worst case the floors exist for.
	addrs := make([]string, 2)
	caches := make([]*core.Cache, 2)
	for i := range addrs {
		cli, err := transport.DialDB(ctx, dbAddr, 2)
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		cache, err := core.New(core.Config{Backend: cli, Strategy: core.StrategyRetry})
		if err != nil {
			t.Fatal(err)
		}
		defer cache.Close()
		srv := transport.NewCacheServer(cache, t.Logf)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs[i], caches[i] = addr, cache
	}

	// Find a key whose ring home is node 1: updates relay through the
	// first live node (node 0), so node 1 never sees the write and stays
	// the stale home the read is routed to.
	ring, err := cluster.NewRing(addrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	var key tcache.Key
	for i := 0; ; i++ {
		k := tcache.Key(fmt.Sprintf("obj%d", i))
		if m, _ := ring.Lookup(k); m == 1 {
			key = k
			break
		}
	}

	if err := d.Update(ctx, func(tx *tcache.Tx) error {
		return tx.Set(key, tcache.Value("old"))
	}); err != nil {
		t.Fatal(err)
	}

	cc, err := tcache.DialCluster(ctx, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	// Warm the key: cached locally AND on its home node (node 1).
	if v, err := cc.Get(ctx, key); err != nil || string(v) != "old" {
		t.Fatalf("warmup read = %q, %v", v, err)
	}

	// Commit through the cluster (relayed via node 0 to the database).
	if err := cc.Update(ctx, func(tx *tcache.Tx) error {
		if _, _, err := tx.Get(ctx, key); err != nil {
			return err
		}
		return tx.Set(key, tcache.Value("new"))
	}); err != nil {
		t.Fatal(err)
	}

	// Node 1 still caches "old" — prove it, reading it directly without
	// a floor.
	rawCli, err := transport.DialDB(ctx, addrs[1], 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rawCli.Close()
	if item, ok, err := rawCli.ReadItem(ctx, kv.Key(key)); err != nil || !ok || string(item.Value) != "old" {
		t.Fatalf("home node should still cache \"old\", got %q, %v, %v", item.Value, ok, err)
	}

	// The client's own read, though, is floored at its commit: routed to
	// the stale home node, which must refetch instead of serving "old".
	if v, err := cc.Get(ctx, key); err != nil || string(v) != "new" {
		t.Fatalf("read after cluster Update = %q, %v, want \"new\" (write-mark floor)", v, err)
	}
	if fr := caches[1].Metrics().FloorRefetches; fr == 0 {
		t.Fatal("home node served the floored read without a refetch")
	}
}

// readOnlyBackend implements Backend but not UpdaterBackend.
type readOnlyBackend struct{}

func (readOnlyBackend) ReadItem(ctx context.Context, key tcache.Key) (tcache.Item, bool, error) {
	return tcache.Item{}, false, nil
}

func (readOnlyBackend) Subscribe(name string, sink func(tcache.Invalidation)) (func(), error) {
	return func() {}, nil
}

// TestCacheUpdateUnsupportedBackend: a cache on a backend without the
// write capability refuses Update with a matchable error.
func TestCacheUpdateUnsupportedBackend(t *testing.T) {
	c, err := tcache.NewCache(readOnlyBackend{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Update(context.Background(), func(tx *tcache.Tx) error { return nil })
	if !errors.Is(err, tcache.ErrUpdatesUnsupported) {
		t.Fatalf("Update on read-only backend = %v, want ErrUpdatesUnsupported", err)
	}
}

// TestValidatedUpdateConflictDetail pins the public shape of a rejected
// optimistic commit: ErrConflict identity plus the stale key and the
// committed version that superseded it.
func TestValidatedUpdateConflictDetail(t *testing.T) {
	r := newRemoteRig(t)
	ctx := context.Background()
	if err := r.db.Update(ctx, func(tx *tcache.Tx) error {
		return tx.Set("k", tcache.Value("v1"))
	}); err != nil {
		t.Fatal(err)
	}
	item, _, err := r.remote.ReadItem(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	stale := []tcache.ObservedRead{{Key: "k", Version: item.Version, Found: true}}

	// The database moves on; the observation is now stale.
	if err := r.db.Update(ctx, func(tx *tcache.Tx) error {
		return tx.Set("k", tcache.Value("v2"))
	}); err != nil {
		t.Fatal(err)
	}
	cur, _, err := r.db.Get(ctx, "k")
	if err != nil || string(cur) != "v2" {
		t.Fatal("setup failed")
	}

	_, err = r.remote.ValidatedUpdate(ctx, stale, []tcache.KeyValue{{Key: "k", Value: tcache.Value("v3")}})
	if !errors.Is(err, tcache.ErrConflict) {
		t.Fatalf("stale validated update = %v, want ErrConflict", err)
	}
	var ce *tcache.ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("conflict carried no detail: %v", err)
	}
	if ce.Key != "k" || !ce.Found || !item.Version.Less(ce.Current) {
		t.Fatalf("conflict detail = %+v (observed %s)", ce, item.Version)
	}
	// And the write was NOT applied.
	if v, _, _ := r.db.Get(ctx, "k"); string(v) != "v2" {
		t.Fatalf("rejected commit leaked a write: %q", v)
	}

	var errdb *db.ConflictError
	if !errors.As(err, &errdb) {
		t.Fatal("ConflictError alias does not match db.ConflictError")
	}
}
