// Command tcache-cli is a small client for tdbd and tcached.
//
// Usage:
//
//	tcache-cli -db 127.0.0.1:7070 set key value [key value ...]
//	tcache-cli -db 127.0.0.1:7070 get key
//	tcache-cli -cache 127.0.0.1:7071 read key [key ...]   # one read-only txn
//	tcache-cli -cache 127.0.0.1:7071 cget key             # plain cache read
//	tcache-cli -cache 127.0.0.1:7071 stats
//	tcache-cli -db 127.0.0.1:7070 ping                    # role + durability health
//	tcache-cli -db 127.0.0.1:7072 promote                 # standby → primary
//	tcache-cli -cache 127.0.0.1:7071 top                  # live per-second rates
//
// With -cluster, read/cget/stats/top address a whole fleet of tcached
// nodes through the consistent-hash routing tier instead of one daemon:
//
//	tcache-cli -cluster edge1:7071,edge2:7071,edge3:7071 read key [key ...]
//	tcache-cli -cluster edge1:7071,edge2:7071,edge3:7071 stats
//	tcache-cli -cluster edge1:7071,edge2:7071,edge3:7071 top -interval 2s
//
// stats and ping take -json for machine-readable output (one JSON
// document on stdout; histograms are reported as count/p50/p95/p99/max
// in nanoseconds). top polls each node's OpStats and prints per-second
// deltas: op rate, hit ratio, warm/cold read p99 over the window (not
// since boot), and replication lag where the node reports one.
//
// Exit codes: 0 on success — including a read transaction that aborted
// cleanly, which is a correct outcome of the protocol and is reported
// on stdout; 1 on any usage, transport, or validation error, and for
// ping against an unhealthy node (so scripts can gate on durability).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"tcache"
	"tcache/internal/cluster"
	"tcache/internal/kv"
	"tcache/internal/telemetry"
	"tcache/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tcache-cli:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	var (
		dbAddr    = flag.String("db", "127.0.0.1:7070", "tdbd address")
		cacheAddr = flag.String("cache", "127.0.0.1:7071", "tcached address")
		clusterFl = flag.String("cluster", "", "comma-separated tcached fleet (read/cget/stats/top route through the cluster tier instead of -cache)")
		jsonOut   = flag.Bool("json", false, "stats, ping: emit one JSON document instead of text")
		interval  = flag.Duration("interval", time.Second, "top: polling interval")
		count     = flag.Int("count", 0, "top: number of refreshes (0 = until interrupted)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		return errors.New("usage: tcache-cli [flags] set|get|read|cget|stats|ping|top|promote ...")
	}
	// Flags may also follow the subcommand (`stats -json`, `top -interval
	// 2s`): the global FlagSet stops at the first positional arg, so each
	// flag-taking subcommand re-parses its tail, seeded from the globals.
	if args[0] == "top" {
		fs := flag.NewFlagSet("top", flag.ContinueOnError)
		ti := fs.Duration("interval", *interval, "polling interval")
		tc := fs.Int("count", *count, "number of refreshes (0 = until interrupted)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		addrs := cluster.SplitAddrs(*clusterFl)
		if len(addrs) == 0 {
			addrs = []string{*cacheAddr}
		}
		return runTop(ctx, addrs, *ti, *tc)
	}
	parseJSON := func(cmd string, rest []string) (bool, []string, error) {
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		j := fs.Bool("json", *jsonOut, "emit one JSON document instead of text")
		if err := fs.Parse(rest); err != nil {
			return false, nil, err
		}
		return *j, fs.Args(), nil
	}
	if addrs := cluster.SplitAddrs(*clusterFl); len(addrs) > 0 {
		switch cmd, rest := args[0], args[1:]; cmd {
		case "read", "cget", "stats":
			j, rest, err := parseJSON(cmd, rest)
			if err != nil {
				return err
			}
			return runCluster(ctx, addrs, cmd, rest, j)
		}
	}

	switch cmd, rest := args[0], args[1:]; cmd {
	case "set":
		if len(rest) == 0 || len(rest)%2 != 0 {
			return errors.New("set needs key value pairs")
		}
		remote, err := tcache.Dial(ctx, *dbAddr)
		if err != nil {
			return err
		}
		defer remote.Close()
		// One unified read-modify-write transaction: read each key (the
		// observed versions are validated at commit), then write it —
		// committed in a single round trip, conflicts retried.
		if err := remote.Update(ctx, func(tx *tcache.Tx) error {
			for i := 0; i < len(rest); i += 2 {
				if _, _, err := tx.Get(ctx, kv.Key(rest[i])); err != nil {
					return err
				}
				if err := tx.Set(kv.Key(rest[i]), kv.Value(rest[i+1])); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
		fmt.Println("committed")
		return nil

	case "ping":
		// Role and durability health of a tdbd (protocol v5): "primary"
		// or "standby", plus the WAL's sticky fail-stop error if any.
		j, _, err := parseJSON(cmd, rest)
		if err != nil {
			return err
		}
		cli, err := transport.DialDB(ctx, *dbAddr, 1)
		if err != nil {
			return err
		}
		defer cli.Close()
		st, err := cli.Status(ctx)
		if err != nil {
			return err
		}
		if j {
			if err := emitJSON(map[string]any{
				"addr":       *dbAddr,
				"role":       st.Role,
				"counter":    st.Counter,
				"leader":     st.Leader,
				"repl_lag":   st.Lag,
				"healthy":    st.Healthy,
				"health_err": st.HealthErr,
			}); err != nil {
				return err
			}
			if !st.Healthy {
				return fmt.Errorf("node %s is unhealthy", *dbAddr)
			}
			return nil
		}
		fmt.Printf("role=%s counter=%d", st.Role, st.Counter)
		if st.Leader != "" {
			fmt.Printf(" leader=%s", st.Leader)
		}
		if st.Role == "primary" {
			fmt.Printf(" repl-lag=%d", st.Lag)
		}
		if st.Healthy {
			fmt.Printf(" healthy\n")
			return nil
		}
		fmt.Printf(" UNHEALTHY: %s\n", st.HealthErr)
		return fmt.Errorf("node %s is unhealthy", *dbAddr)

	case "promote":
		cli, err := transport.DialDB(ctx, *dbAddr, 1)
		if err != nil {
			return err
		}
		defer cli.Close()
		counter, err := cli.Promote(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("promoted: %s is primary at counter=%d\n", *dbAddr, counter)
		return nil

	case "get":
		if len(rest) != 1 {
			return errors.New("get needs exactly one key")
		}
		cli, err := transport.DialDB(ctx, *dbAddr, 1)
		if err != nil {
			return err
		}
		defer cli.Close()
		item, ok, err := cli.ReadItem(ctx, kv.Key(rest[0]))
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("%s: not found", rest[0])
		}
		fmt.Printf("%s = %q @%s deps=%s\n", rest[0], item.Value, item.Version, item.Deps)
		return nil

	case "read":
		if len(rest) == 0 {
			return errors.New("read needs at least one key")
		}
		cli, err := transport.DialCache(ctx, *cacheAddr)
		if err != nil {
			return err
		}
		defer cli.Close()
		keys := make([]kv.Key, len(rest))
		for i, k := range rest {
			keys[i] = kv.Key(k)
		}
		// One wire round trip for the whole transaction (OpReadMulti).
		vals, err := cli.ReadMulti(ctx, cli.NewTxnID(), keys, true)
		if errors.Is(err, transport.ErrAborted) {
			fmt.Println("transaction aborted: inconsistency detected — retry")
			return nil
		}
		if err != nil {
			return err
		}
		for i, k := range rest {
			fmt.Printf("%s = %q\n", k, vals[i])
		}
		fmt.Println("transaction committed")
		return nil

	case "cget":
		if len(rest) != 1 {
			return errors.New("cget needs exactly one key")
		}
		cli, err := transport.DialCache(ctx, *cacheAddr)
		if err != nil {
			return err
		}
		defer cli.Close()
		val, err := cli.Get(ctx, kv.Key(rest[0]))
		if err != nil {
			return err
		}
		fmt.Printf("%s = %q\n", rest[0], val)
		return nil

	case "stats":
		j, _, err := parseJSON(cmd, rest)
		if err != nil {
			return err
		}
		cli, err := transport.DialCache(ctx, *cacheAddr)
		if err != nil {
			return err
		}
		defer cli.Close()
		stats, err := cli.Stats(ctx)
		if err != nil {
			return err
		}
		if j {
			return emitJSON(map[string]any{"addr": *cacheAddr, "stats": statsJSON(stats)})
		}
		keys := make([]string, 0, len(stats))
		for k := range stats {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("%-16s %d\n", k, stats[k])
		}
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// runCluster serves the read-side commands through a cluster tier.
func runCluster(ctx context.Context, addrs []string, cmd string, rest []string, jsonOut bool) error {
	cc, err := tcache.DialCluster(ctx, addrs)
	if err != nil {
		return err
	}
	defer cc.Close()

	switch cmd {
	case "read":
		if len(rest) == 0 {
			return errors.New("read needs at least one key")
		}
		keys := make([]tcache.Key, len(rest))
		for i, k := range rest {
			keys[i] = tcache.Key(k)
		}
		var vals []tcache.Value
		err := cc.ReadTxn(ctx, func(tx *tcache.ReadTx) error {
			var err error
			vals, err = tx.GetMulti(ctx, keys...)
			return err
		})
		if errors.Is(err, tcache.ErrTxnAborted) {
			fmt.Println("transaction aborted: inconsistency detected — retry")
			return nil
		}
		if err != nil {
			return err
		}
		for i, k := range rest {
			fmt.Printf("%s = %q\n", k, vals[i])
		}
		fmt.Println("transaction committed")
		return nil

	case "cget":
		if len(rest) != 1 {
			return errors.New("cget needs exactly one key")
		}
		val, err := cc.Get(ctx, tcache.Key(rest[0]))
		if err != nil {
			return err
		}
		fmt.Printf("%s = %q\n", rest[0], val)
		return nil

	case "stats":
		st := cc.Stats(ctx)
		if jsonOut {
			nodes := make([]map[string]any, len(st.Nodes))
			for i, ns := range st.Nodes {
				n := map[string]any{"addr": ns.Addr, "state": ns.State}
				if ns.Err != "" {
					n["err"] = ns.Err
				}
				if ns.Stats != nil {
					n["stats"] = statsJSON(ns.Stats)
				}
				nodes[i] = n
			}
			return emitJSON(map[string]any{
				"local":     st.Local,
				"nodes":     nodes,
				"aggregate": statsJSON(st.Aggregate),
			})
		}
		fmt.Printf("local cache: reads %d, hits %d, misses %d\n",
			st.Local.Reads, st.Local.Hits, st.Local.Misses)
		for _, ns := range st.Nodes {
			fmt.Printf("node %s [%s]", ns.Addr, ns.State)
			if ns.Err != "" {
				fmt.Printf(" stats error: %s", ns.Err)
			}
			fmt.Println()
			printStats(ns.Stats, "  ")
		}
		fmt.Println("aggregate:")
		printStats(st.Aggregate, "  ")
		return nil
	}
	return fmt.Errorf("unknown command %q", cmd)
}

func printStats(stats map[string]uint64, indent string) {
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s%-18s %d\n", indent, k, stats[k])
	}
}

// emitJSON is the one encoder behind every -json mode, so all commands
// agree on formatting (indented, sorted keys, one document per run).
func emitJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// latJSON is a histogram summarized for JSON output; all values in
// nanoseconds.
type latJSON struct {
	Count uint64 `json:"count"`
	P50   uint64 `json:"p50_ns"`
	P95   uint64 `json:"p95_ns"`
	P99   uint64 `json:"p99_ns"`
	Max   uint64 `json:"max_ns"`
}

// statsJSON decodes a flat OpStats map into its typed JSON shape:
// counters and gauges stay numeric, histograms become latency
// summaries. Pre-telemetry servers send only plain keys, which land in
// "counters" — the document shape is the same either way.
func statsJSON(flat map[string]uint64) map[string]any {
	snap := telemetry.ParseFlat(flat)
	hists := make(map[string]latJSON, len(snap.Histograms))
	for name, h := range snap.Histograms {
		hists[name] = latJSON{Count: h.Count(), P50: h.P50(), P95: h.P95(), P99: h.P99(), Max: h.Max()}
	}
	return map[string]any{
		"counters":   snap.Counters,
		"gauges":     snap.Gauges,
		"histograms": hists,
	}
}

// histDelta returns the histogram of only the samples recorded between
// two snapshots of the same monotone histogram: bucket counts and the
// sum subtract exactly, so window quantiles come straight out of the
// difference.
func histDelta(cur, prev telemetry.HistogramSnapshot) telemetry.HistogramSnapshot {
	var d telemetry.HistogramSnapshot
	for i := range cur.Counts {
		d.Counts[i] = cur.Counts[i] - prev.Counts[i]
	}
	d.Sum = cur.Sum - prev.Sum
	return d
}

// topNode is one fleet member's polling state for the top command.
type topNode struct {
	addr string
	cli  *transport.CacheClient
	prev telemetry.Snapshot
	ok   bool // prev holds a real sample (deltas are meaningful)
}

// poll refreshes the node's snapshot, redialing a node that was down.
// It returns the previous and current snapshots when a delta window is
// available.
func (n *topNode) poll(ctx context.Context) (prev, cur telemetry.Snapshot, haveDelta bool, err error) {
	if n.cli == nil {
		cli, derr := transport.DialCache(ctx, n.addr)
		if derr != nil {
			n.ok = false
			return prev, cur, false, derr
		}
		n.cli = cli
	}
	flat, serr := n.cli.Stats(ctx)
	if serr != nil {
		// Drop the connection so the next tick redials; a restart also
		// resets the node's counters, so the stale baseline must go too.
		n.cli.Close()
		n.cli = nil
		n.ok = false
		return prev, cur, false, serr
	}
	cur = telemetry.ParseFlat(flat)
	prev, haveDelta = n.prev, n.ok
	n.prev, n.ok = cur, true
	return prev, cur, haveDelta, nil
}

// runTop polls each node's OpStats on a fixed interval and prints
// per-second deltas: a terminal-friendly fleet dashboard. Rates and
// quantiles describe the window between two polls, not the node's
// lifetime, so a latency regression shows up immediately instead of
// being averaged into hours of history.
func runTop(ctx context.Context, addrs []string, interval time.Duration, count int) error {
	if interval <= 0 {
		return errors.New("top: -interval must be positive")
	}
	nodes := make([]*topNode, len(addrs))
	for i, a := range addrs {
		nodes[i] = &topNode{addr: a}
	}
	// Take the baseline sample immediately so the first printed window
	// is real data after one interval, not zeros.
	for _, n := range nodes {
		_, _, _, _ = n.poll(ctx) //nolint:dogsled // baseline only
	}

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	secs := interval.Seconds()
	for i := 0; count == 0 || i < count; i++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
		fmt.Printf("%-21s %8s %6s %10s %10s %9s %6s\n",
			time.Now().Format("15:04:05"), "OPS/S", "HIT%", "P99-WARM", "P99-COLD", "MEM", "LAG")
		for _, n := range nodes {
			prev, cur, haveDelta, err := n.poll(ctx)
			if err != nil {
				fmt.Printf("%-21s down: %v\n", n.addr, err)
				continue
			}
			if !haveDelta {
				fmt.Printf("%-21s (baseline)\n", n.addr)
				continue
			}
			dReads := cur.Counters["reads"] - prev.Counters["reads"]
			dHits := cur.Counters["hits"] - prev.Counters["hits"]
			hit := "-"
			if dReads > 0 {
				hit = fmt.Sprintf("%.1f", 100*float64(dHits)/float64(dReads))
			}
			warm := histDelta(cur.Histograms["read_warm_ns"], prev.Histograms["read_warm_ns"])
			cold := histDelta(cur.Histograms["read_cold_ns"], prev.Histograms["read_cold_ns"])
			lag := "-"
			if v, present := cur.Gauges["repl_lag"]; present {
				lag = fmt.Sprintf("%d", v)
			}
			mem := "-"
			if v, present := cur.Gauges["cache_resident_bytes"]; present {
				mem = humanBytes(v)
				if budget, bounded := cur.Gauges["cache_max_bytes"]; bounded && budget > 0 {
					mem += fmt.Sprintf("/%.0f%%", 100*float64(v)/float64(budget))
				}
			}
			fmt.Printf("%-21s %8.0f %6s %10s %10s %9s %6s\n",
				n.addr, float64(dReads)/secs, hit,
				topQuantile(&warm), topQuantile(&cold), mem, lag)
		}
	}
	return nil
}

// humanBytes renders a byte count with a binary-unit suffix, compact
// enough for the MEM column (e.g. "1.5M" for 1.5 MiB).
func humanBytes(n uint64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	v, suffix := float64(n), ""
	for _, s := range []string{"K", "M", "G", "T"} {
		v /= unit
		suffix = s
		if v < unit {
			break
		}
	}
	return fmt.Sprintf("%.1f%s", v, suffix)
}

// topQuantile renders a window histogram's p99 as a duration, or "-"
// when the window recorded nothing.
func topQuantile(h *telemetry.HistogramSnapshot) string {
	if h.Count() == 0 {
		return "-"
	}
	return time.Duration(h.P99()).String()
}
