// Command tcache-cli is a small client for tdbd and tcached.
//
// Usage:
//
//	tcache-cli -db 127.0.0.1:7070 set key value [key value ...]
//	tcache-cli -db 127.0.0.1:7070 get key
//	tcache-cli -cache 127.0.0.1:7071 read key [key ...]   # one read-only txn
//	tcache-cli -cache 127.0.0.1:7071 cget key             # plain cache read
//	tcache-cli -cache 127.0.0.1:7071 stats
//	tcache-cli -db 127.0.0.1:7070 ping                    # role + durability health
//	tcache-cli -db 127.0.0.1:7072 promote                 # standby → primary
//
// With -cluster, read/cget/stats address a whole fleet of tcached nodes
// through the consistent-hash routing tier instead of one daemon:
//
//	tcache-cli -cluster edge1:7071,edge2:7071,edge3:7071 read key [key ...]
//	tcache-cli -cluster edge1:7071,edge2:7071,edge3:7071 stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"tcache"
	"tcache/internal/cluster"
	"tcache/internal/kv"
	"tcache/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tcache-cli:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	var (
		dbAddr    = flag.String("db", "127.0.0.1:7070", "tdbd address")
		cacheAddr = flag.String("cache", "127.0.0.1:7071", "tcached address")
		clusterFl = flag.String("cluster", "", "comma-separated tcached fleet (read/cget/stats route through the cluster tier instead of -cache)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		return errors.New("usage: tcache-cli [flags] set|get|read|cget|stats|ping|promote ...")
	}
	if addrs := cluster.SplitAddrs(*clusterFl); len(addrs) > 0 {
		switch cmd, rest := args[0], args[1:]; cmd {
		case "read", "cget", "stats":
			return runCluster(ctx, addrs, cmd, rest)
		}
	}

	switch cmd, rest := args[0], args[1:]; cmd {
	case "set":
		if len(rest) == 0 || len(rest)%2 != 0 {
			return errors.New("set needs key value pairs")
		}
		remote, err := tcache.Dial(ctx, *dbAddr)
		if err != nil {
			return err
		}
		defer remote.Close()
		// One unified read-modify-write transaction: read each key (the
		// observed versions are validated at commit), then write it —
		// committed in a single round trip, conflicts retried.
		if err := remote.Update(ctx, func(tx *tcache.Tx) error {
			for i := 0; i < len(rest); i += 2 {
				if _, _, err := tx.Get(ctx, kv.Key(rest[i])); err != nil {
					return err
				}
				if err := tx.Set(kv.Key(rest[i]), kv.Value(rest[i+1])); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
		fmt.Println("committed")
		return nil

	case "ping":
		// Role and durability health of a tdbd (protocol v5): "primary"
		// or "standby", plus the WAL's sticky fail-stop error if any.
		cli, err := transport.DialDB(ctx, *dbAddr, 1)
		if err != nil {
			return err
		}
		defer cli.Close()
		st, err := cli.Status(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("role=%s counter=%d", st.Role, st.Counter)
		if st.Leader != "" {
			fmt.Printf(" leader=%s", st.Leader)
		}
		if st.Role == "primary" {
			fmt.Printf(" repl-lag=%d", st.Lag)
		}
		if st.Healthy {
			fmt.Printf(" healthy\n")
			return nil
		}
		fmt.Printf(" UNHEALTHY: %s\n", st.HealthErr)
		return fmt.Errorf("node %s is unhealthy", *dbAddr)

	case "promote":
		cli, err := transport.DialDB(ctx, *dbAddr, 1)
		if err != nil {
			return err
		}
		defer cli.Close()
		counter, err := cli.Promote(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("promoted: %s is primary at counter=%d\n", *dbAddr, counter)
		return nil

	case "get":
		if len(rest) != 1 {
			return errors.New("get needs exactly one key")
		}
		cli, err := transport.DialDB(ctx, *dbAddr, 1)
		if err != nil {
			return err
		}
		defer cli.Close()
		item, ok, err := cli.ReadItem(ctx, kv.Key(rest[0]))
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("%s: not found", rest[0])
		}
		fmt.Printf("%s = %q @%s deps=%s\n", rest[0], item.Value, item.Version, item.Deps)
		return nil

	case "read":
		if len(rest) == 0 {
			return errors.New("read needs at least one key")
		}
		cli, err := transport.DialCache(ctx, *cacheAddr)
		if err != nil {
			return err
		}
		defer cli.Close()
		keys := make([]kv.Key, len(rest))
		for i, k := range rest {
			keys[i] = kv.Key(k)
		}
		// One wire round trip for the whole transaction (OpReadMulti).
		vals, err := cli.ReadMulti(ctx, cli.NewTxnID(), keys, true)
		if errors.Is(err, transport.ErrAborted) {
			fmt.Println("transaction aborted: inconsistency detected — retry")
			return nil
		}
		if err != nil {
			return err
		}
		for i, k := range rest {
			fmt.Printf("%s = %q\n", k, vals[i])
		}
		fmt.Println("transaction committed")
		return nil

	case "cget":
		if len(rest) != 1 {
			return errors.New("cget needs exactly one key")
		}
		cli, err := transport.DialCache(ctx, *cacheAddr)
		if err != nil {
			return err
		}
		defer cli.Close()
		val, err := cli.Get(ctx, kv.Key(rest[0]))
		if err != nil {
			return err
		}
		fmt.Printf("%s = %q\n", rest[0], val)
		return nil

	case "stats":
		cli, err := transport.DialCache(ctx, *cacheAddr)
		if err != nil {
			return err
		}
		defer cli.Close()
		stats, err := cli.Stats(ctx)
		if err != nil {
			return err
		}
		keys := make([]string, 0, len(stats))
		for k := range stats {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("%-16s %d\n", k, stats[k])
		}
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// runCluster serves the read-side commands through a cluster tier.
func runCluster(ctx context.Context, addrs []string, cmd string, rest []string) error {
	cc, err := tcache.DialCluster(ctx, addrs)
	if err != nil {
		return err
	}
	defer cc.Close()

	switch cmd {
	case "read":
		if len(rest) == 0 {
			return errors.New("read needs at least one key")
		}
		keys := make([]tcache.Key, len(rest))
		for i, k := range rest {
			keys[i] = tcache.Key(k)
		}
		var vals []tcache.Value
		err := cc.ReadTxn(ctx, func(tx *tcache.ReadTx) error {
			var err error
			vals, err = tx.GetMulti(ctx, keys...)
			return err
		})
		if errors.Is(err, tcache.ErrTxnAborted) {
			fmt.Println("transaction aborted: inconsistency detected — retry")
			return nil
		}
		if err != nil {
			return err
		}
		for i, k := range rest {
			fmt.Printf("%s = %q\n", k, vals[i])
		}
		fmt.Println("transaction committed")
		return nil

	case "cget":
		if len(rest) != 1 {
			return errors.New("cget needs exactly one key")
		}
		val, err := cc.Get(ctx, tcache.Key(rest[0]))
		if err != nil {
			return err
		}
		fmt.Printf("%s = %q\n", rest[0], val)
		return nil

	case "stats":
		st := cc.Stats(ctx)
		fmt.Printf("local cache: reads %d, hits %d, misses %d\n",
			st.Local.Reads, st.Local.Hits, st.Local.Misses)
		for _, ns := range st.Nodes {
			fmt.Printf("node %s [%s]", ns.Addr, ns.State)
			if ns.Err != "" {
				fmt.Printf(" stats error: %s", ns.Err)
			}
			fmt.Println()
			printStats(ns.Stats, "  ")
		}
		fmt.Println("aggregate:")
		printStats(st.Aggregate, "  ")
		return nil
	}
	return fmt.Errorf("unknown command %q", cmd)
}

func printStats(stats map[string]uint64, indent string) {
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s%-18s %d\n", indent, k, stats[k])
	}
}
