package main

// -fig cluster: the cluster-tier routing-overhead benchmark. It stands
// up the full multi-edge topology on loopback — one served DB, three
// edge nodes (ServeEdge), and a DialCluster client — next to the plain
// single-backend deployment (Dial), and measures the routing tier's
// cost where it matters:
//
//   - warm single-key read (the acceptance metric: a cluster client's
//     warm hit must stay within a few percent of plain Dial, with zero
//     extra allocations — the ring is consulted only on fills);
//   - cold single-key read (one loopback round trip in both setups; the
//     delta is the ring lookup + health/floor bookkeeping);
//   - cold 5-key batch (per-node sub-batch split + reassembly);
//   - the raw ring lookup (must not allocate).
//
// Results go to BENCH_pr4.json, and any matching entries in the budget
// file gate allocs/op regressions; the derived warm-read overhead and
// extra-alloc figures are recorded alongside.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"tcache"
	"tcache/internal/cluster"
	"tcache/internal/kv"
	"tcache/internal/workload"
)

const clusterBenchOut = "BENCH_pr4.json"

// clusterAddrs/clusterDB are the -cluster / -cluster-db flags: when set,
// the cluster benchmarks run against that live fleet instead of a
// self-built loopback one.
var clusterAddrs, clusterDB string

// externalCluster dials the fleet named by -cluster and seeds the
// benchmark keys through -cluster-db.
func externalCluster(b *testing.B, nKeys int) *tcache.ClusterCache {
	b.Helper()
	if clusterDB == "" {
		b.Fatal("-cluster needs -cluster-db to seed the benchmark keys")
	}
	remote, err := tcache.Dial(benchCtx, clusterDB)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(remote.Close)
	if err := remote.Update(benchCtx, func(tx *tcache.Tx) error {
		for i := 0; i < nKeys; i++ {
			if err := tx.Set(workload.ObjectKey(i), kv.Value("seed")); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	cc, err := tcache.DialCluster(benchCtx, cluster.SplitAddrs(clusterAddrs))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cc.Close)
	return cc
}

// clusterStack builds the cluster topology over loopback — a served DB,
// nEdges edge nodes, and a DialCluster client attached to all of them —
// or, with -cluster, attaches to the live external fleet instead.
func clusterStack(b *testing.B, nEdges, nKeys int) *tcache.ClusterCache {
	b.Helper()
	if clusterAddrs != "" {
		return externalCluster(b, nKeys)
	}
	d := tcache.OpenDB(tcache.WithDepListBound(5))
	b.Cleanup(func() { d.Close() })
	addr, stop, err := tcache.ServeDB(d, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(stop)
	addrs := make([]string, nEdges)
	for i := range addrs {
		edge, err := tcache.ServeEdge(benchCtx, addr, "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(edge.Close)
		addrs[i] = edge.Addr()
	}
	cc, err := tcache.DialCluster(benchCtx, addrs)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cc.Close)
	if err := d.Update(benchCtx, func(tx *tcache.Tx) error {
		for i := 0; i < nKeys; i++ {
			if err := tx.Set(workload.ObjectKey(i), kv.Value("seed")); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	return cc
}

// warmRead1 measures a warm single-key read transaction on any cache
// with the shared read API.
func warmRead1(b *testing.B, read func(ctx context.Context, fn func(tx *tcache.ReadTx) error) error) {
	key := workload.ObjectKey(0)
	// Warm once outside the timer.
	if err := read(benchCtx, func(tx *tcache.ReadTx) error {
		_, err := tx.Get(benchCtx, key)
		return err
	}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := read(benchCtx, func(tx *tcache.ReadTx) error {
			_, err := tx.Get(benchCtx, key)
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRemoteWarmRead1(b *testing.B) {
	cache := remoteStack(b, 1)
	warmRead1(b, cache.ReadTxn)
}

func benchClusterWarmRead1(b *testing.B) {
	cc := clusterStack(b, 3, 1)
	warmRead1(b, cc.ReadTxn)
}

// coldRead1 measures a single-key read whose cache entry was just
// evicted: one backend round trip per iteration (DB get for the plain
// stack, routed edge read for the cluster).
func coldRead1(b *testing.B, cache interface {
	Invalidate(key tcache.Key, version tcache.Version)
	ReadTxn(ctx context.Context, fn func(tx *tcache.ReadTx) error) error
}) {
	key := workload.ObjectKey(0)
	evict := kv.Version{Counter: ^uint64(0) - 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache.Invalidate(key, evict)
		if err := cache.ReadTxn(benchCtx, func(tx *tcache.ReadTx) error {
			_, err := tx.Get(benchCtx, key)
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRemoteColdRead1(b *testing.B) {
	cache := remoteStack(b, 1)
	coldRead1(b, cache)
}

func benchClusterColdRead1(b *testing.B) {
	cc := clusterStack(b, 3, 1)
	coldRead1(b, cc)
}

func benchClusterColdMulti(b *testing.B) {
	cc := clusterStack(b, 3, 5)
	keys := benchKeys(5)
	evict := kv.Version{Counter: ^uint64(0) - 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range keys {
			cc.Invalidate(k, evict)
		}
		if err := cc.ReadTxn(benchCtx, func(tx *tcache.ReadTx) error {
			_, err := tx.GetMulti(benchCtx, keys...)
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchClusterRingLookup(b *testing.B) {
	ring, err := cluster.NewRing([]string{"edge-a:7071", "edge-b:7071", "edge-c:7071"}, 0)
	if err != nil {
		b.Fatal(err)
	}
	keys := benchKeys(64)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		m, _ := ring.Lookup(keys[i&63])
		sink += m
	}
	_ = sink
}

// runClusterFig runs the cluster benchmarks, writes BENCH_pr4.json, and
// applies the allocs/op budget gate to any cluster entries present in
// bench_budget.json.
func runClusterFig(quick bool, seed int64) error {
	_ = seed // loopback benchmarks carry no simulation randomness
	fmt.Printf("running cluster routing-overhead benchmarks (this takes ~15s)\n")
	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"BenchmarkRemoteWarmRead1", benchRemoteWarmRead1},
		{"BenchmarkClusterWarmRead1", benchClusterWarmRead1},
		{"BenchmarkRemoteColdRead1", benchRemoteColdRead1},
		{"BenchmarkClusterColdRead1", benchClusterColdRead1},
		{"BenchmarkClusterColdMulti", benchClusterColdMulti},
		{"BenchmarkClusterRingLookup", benchClusterRingLookup},
	}
	if quick {
		// -quick keeps CI fast: the warm pair (the acceptance metric) and
		// the ring only.
		benches = benches[:2]
		benches = append(benches, struct {
			name string
			fn   func(b *testing.B)
		}{"BenchmarkClusterRingLookup", benchClusterRingLookup})
	}
	results := map[string]benchResult{}
	for _, bench := range benches {
		r := testing.Benchmark(bench.fn)
		if r.N == 0 {
			return fmt.Errorf("%s failed (ran zero iterations)", bench.name)
		}
		res := benchResult{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		results[bench.name] = res
		fmt.Printf("  %-32s %12.0f ns/op %8d B/op %6d allocs/op\n",
			bench.name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}

	derived := map[string]float64{}
	warmRemote, warmCluster := results["BenchmarkRemoteWarmRead1"], results["BenchmarkClusterWarmRead1"]
	if warmRemote.NsPerOp > 0 {
		derived["warm_read_overhead_pct"] = 100 * (warmCluster.NsPerOp - warmRemote.NsPerOp) / warmRemote.NsPerOp
		derived["warm_read_extra_allocs"] = float64(warmCluster.AllocsPerOp - warmRemote.AllocsPerOp)
	}
	if cr, ok := results["BenchmarkClusterColdRead1"]; ok {
		if rr := results["BenchmarkRemoteColdRead1"]; rr.NsPerOp > 0 {
			derived["cold_read_overhead_pct"] = 100 * (cr.NsPerOp - rr.NsPerOp) / rr.NsPerOp
		}
	}
	fmt.Printf("  warm single-key read overhead vs plain Dial: %+.1f%%, %+.0f allocs\n",
		derived["warm_read_overhead_pct"], derived["warm_read_extra_allocs"])

	report := struct {
		Machine map[string]any         `json:"machine"`
		Results map[string]benchResult `json:"results"`
		Derived map[string]float64     `json:"derived"`
	}{
		Machine: map[string]any{
			"go":     runtime.Version(),
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cpus":   runtime.NumCPU(),
		},
		Results: results,
		Derived: derived,
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(clusterBenchOut, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", clusterBenchOut)

	// The routing hot path must not allocate beyond the plain stack: gate
	// it directly (stable across machines, unlike ns/op).
	if extra := derived["warm_read_extra_allocs"]; extra > 0 {
		return fmt.Errorf("cluster warm read allocates %+.0f more than plain Dial (routing hot path must add none)", extra)
	}
	if budgetRaw, err := os.ReadFile("bench_budget.json"); err == nil {
		var budget map[string]int64
		if json.Unmarshal(budgetRaw, &budget) == nil {
			scoped := map[string]int64{}
			for name, max := range budget {
				if _, ok := results[name]; ok {
					scoped[name] = max
				}
			}
			if len(scoped) > 0 {
				if err := checkScopedBudget(scoped, results); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// checkScopedBudget applies the allocs/op gate to the given entries.
func checkScopedBudget(budget map[string]int64, results map[string]benchResult) error {
	var failures []string
	for name, maxAllocs := range budget {
		if res := results[name]; res.AllocsPerOp > maxAllocs {
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op exceeds budget %d", name, res.AllocsPerOp, maxAllocs))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "budget FAIL:", f)
		}
		return fmt.Errorf("bench budget: %d regression(s)", len(failures))
	}
	fmt.Printf("bench budget OK (%d benchmarks within allocs/op budget)\n", len(budget))
	return nil
}
