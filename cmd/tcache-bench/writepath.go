package main

// -fig writepath: the unified-write-path benchmark. It measures what an
// edge client pays to commit a read-modify-write transaction through
// each Updater implementation on loopback:
//
//   - in-process DB.Update (the interactive 2PL baseline);
//   - Remote.Update, the optimistic closure committed in ONE validated
//     OpUpdate round trip (the headline remote number: ns/op and
//     allocs/op of the whole read + commit cycle);
//   - a blind Remote write (no observed reads: the pure commit round
//     trip);
//   - Cache.Update on a remote-backed cache, including the synchronous
//     self-invalidation that buys read-your-writes at the edge.
//
// Results go to BENCH_pr5.json; matching entries in bench_budget.json
// gate allocs/op regressions (CI runs this with -quick).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"tcache"
	"tcache/internal/kv"
	"tcache/internal/workload"
)

const writeBenchOut = "BENCH_pr5.json"

// writeStack builds the remote deployment and returns every tier's
// Updater handle.
func writeStack(b *testing.B) (*tcache.DB, *tcache.Remote, *tcache.Cache) {
	b.Helper()
	d := tcache.OpenDB(tcache.WithDepListBound(5))
	b.Cleanup(func() { d.Close() })
	addr, stop, err := tcache.ServeDB(d, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(stop)
	remote, err := tcache.Dial(benchCtx, addr)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(remote.Close)
	cache, err := tcache.NewCache(remote, tcache.WithStrategy(tcache.StrategyRetry))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cache.Close)
	if err := d.Update(benchCtx, func(tx *tcache.Tx) error {
		return tx.Set(workload.ObjectKey(0), kv.Value("seed"))
	}); err != nil {
		b.Fatal(err)
	}
	return d, remote, cache
}

// rmwLoop drives b.N single-key read-modify-write closures through up.
func rmwLoop(b *testing.B, up tcache.Updater) {
	key := workload.ObjectKey(0)
	val := kv.Value("w")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := up.Update(benchCtx, func(tx *tcache.Tx) error {
			if _, _, err := tx.Get(benchCtx, key); err != nil {
				return err
			}
			return tx.Set(key, val)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchWritePathDBUpdate(b *testing.B) {
	d, _, _ := writeStack(b)
	rmwLoop(b, d)
}

func benchWritePathRemoteUpdate(b *testing.B) {
	_, remote, _ := writeStack(b)
	rmwLoop(b, remote)
}

func benchWritePathRemoteBlindWrite(b *testing.B) {
	_, remote, _ := writeStack(b)
	key := workload.ObjectKey(0)
	val := kv.Value("w")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := remote.Update(benchCtx, func(tx *tcache.Tx) error {
			return tx.Set(key, val)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchWritePathCacheUpdate(b *testing.B) {
	_, _, cache := writeStack(b)
	rmwLoop(b, cache)
}

// runWritePath runs the write-path benchmarks, writes BENCH_pr5.json,
// and applies the allocs/op budget gate to any matching entries in
// bench_budget.json.
func runWritePath(quick bool, seed int64) error {
	_ = seed // loopback benchmarks carry no simulation randomness
	fmt.Printf("running unified write-path benchmarks (this takes ~10s)\n")
	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"BenchmarkWritePathDBUpdate", benchWritePathDBUpdate},
		{"BenchmarkWritePathRemoteUpdate", benchWritePathRemoteUpdate},
		{"BenchmarkWritePathRemoteBlindWrite", benchWritePathRemoteBlindWrite},
		{"BenchmarkWritePathCacheUpdate", benchWritePathCacheUpdate},
	}
	if quick {
		// -quick keeps CI fast: the remote round trip (the headline) and
		// the cache path (self-invalidation) only.
		benches = benches[1:2:2]
		benches = append(benches, struct {
			name string
			fn   func(b *testing.B)
		}{"BenchmarkWritePathCacheUpdate", benchWritePathCacheUpdate})
	}
	results := map[string]benchResult{}
	for _, bench := range benches {
		r := testing.Benchmark(bench.fn)
		if r.N == 0 {
			return fmt.Errorf("%s failed (ran zero iterations)", bench.name)
		}
		res := benchResult{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		results[bench.name] = res
		fmt.Printf("  %-36s %12.0f ns/op %8d B/op %6d allocs/op\n",
			bench.name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}

	report := struct {
		Machine map[string]any         `json:"machine"`
		Results map[string]benchResult `json:"results"`
	}{
		Machine: map[string]any{
			"go":     runtime.Version(),
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cpus":   runtime.NumCPU(),
		},
		Results: results,
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(writeBenchOut, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", writeBenchOut)

	if budgetRaw, err := os.ReadFile("bench_budget.json"); err == nil {
		var budget map[string]int64
		if json.Unmarshal(budgetRaw, &budget) == nil {
			scoped := map[string]int64{}
			for name, max := range budget {
				if _, ok := results[name]; ok {
					scoped[name] = max
				}
			}
			if len(scoped) > 0 {
				if err := checkScopedBudget(scoped, results); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
