package main

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tcache/internal/core"
	"tcache/internal/db"
	"tcache/internal/kv"
	"tcache/internal/workload"
)

// runHitPath measures the validated-read hot path (§III-B on a warm cache)
// under increasing client concurrency, the workload the lock-striped cache
// shards target. It is not a paper figure: it is the capacity-planning
// companion to BenchmarkCacheHitReadParallel, reporting absolute
// transactions/second on real time instead of ns/op.
func runHitPath(quick bool, _ int64) error {
	nKeys, readsPerTxn := 64, 5
	per := 2 * time.Second
	if quick {
		per = 200 * time.Millisecond
	}

	d := db.Open(db.Config{DepBound: 5})
	defer d.Close()
	txn := d.Begin()
	for i := 0; i < nKeys; i++ {
		if err := txn.Write(workload.ObjectKey(i), kv.Value("seed")); err != nil {
			return err
		}
	}
	if _, err := txn.Commit(); err != nil {
		return err
	}

	cache, err := core.New(core.Config{
		Backend:  d,
		Strategy: core.StrategyRetry,
		Shards:   cacheShards,
	})
	if err != nil {
		return err
	}
	defer cache.Close()
	for i := 0; i < nKeys; i++ {
		if _, err := cache.Get(context.Background(), workload.ObjectKey(i)); err != nil {
			return err
		}
	}

	fmt.Printf("Hit-path throughput (%d warm keys, %d reads/txn, %d cache shards, GOMAXPROCS=%d)\n",
		nKeys, readsPerTxn, cache.Shards(), runtime.GOMAXPROCS(0))
	fmt.Printf("%8s  %12s  %10s\n", "clients", "txns/sec", "vs 1")
	var base float64
	for _, clients := range []int{1, 2, 4, 8, 16} {
		rate, err := hitPathRate(cache, clients, nKeys, readsPerTxn, per)
		if err != nil {
			return err
		}
		if clients == 1 {
			base = rate
		}
		fmt.Printf("%8d  %12.0f  %9.2fx\n", clients, rate, rate/base)
	}
	return nil
}

// hitPathRate drives the cache from `clients` goroutines for roughly
// `per` and returns committed transactions per second.
func hitPathRate(cache *core.Cache, clients, nKeys, readsPerTxn int, per time.Duration) (float64, error) {
	var (
		nextID atomic.Uint64
		txns   atomic.Uint64
		stop   atomic.Bool
		wg     sync.WaitGroup
		mu     sync.Mutex
		first  error
	)
	start := time.Now()
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				id := nextID.Add(1)
				base := int(id*uint64(readsPerTxn)) % nKeys
				for r := 0; r < readsPerTxn; r++ {
					k := workload.ObjectKey((base + r) % nKeys)
					if _, err := cache.Read(context.Background(), kv.TxnID(id), k, r == readsPerTxn-1); err != nil {
						mu.Lock()
						if first == nil {
							first = err
						}
						mu.Unlock()
						return
					}
				}
				txns.Add(1)
			}
		}()
	}
	time.Sleep(per)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	if first != nil {
		return 0, first
	}
	return float64(txns.Load()) / elapsed.Seconds(), nil
}
