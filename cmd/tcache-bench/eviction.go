package main

// -fig eviction: the memory-bound figure. Three phases, each with a gate:
//
//  1. Hit ratio under pressure — a zipfian key stream whose working set
//     costs ~4x the byte budget, replayed against each eviction policy
//     (and an unbounded baseline). Resident bytes are asserted <= budget
//     after the run; the doorkeeper row shows admission filtering.
//  2. Warm-hit cost — the validated-read hot path through
//     testing.Benchmark per policy vs the unbounded cache. The gate:
//     a byte-bounded warm hit may not allocate more than the unbounded
//     one (the intrusive-handle design holds), and absolute ceilings
//     come from bench_budget.json (BenchmarkEvict* entries).
//  3. Shard scaling — warm-hit throughput at 8 clients on a bounded
//     cache with 1 vs 8 lock stripes; the per-shard-budget design must
//     not serialize the touch path.
//
// The measured numbers land in BENCH_pr10.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"tcache/internal/core"
	"tcache/internal/db"
	"tcache/internal/evict"
	"tcache/internal/kv"
	"tcache/internal/workload"
)

const evictionBenchOut = "BENCH_pr10.json"

// evictionHitRow is one policy's result from the zipfian replay.
type evictionHitRow struct {
	Policy           string  `json:"policy"`
	HitPct           float64 `json:"hit_pct"`
	Evictions        uint64  `json:"evictions"`
	AdmissionRejects uint64  `json:"admission_rejects"`
	ResidentBytes    uint64  `json:"resident_bytes"`
	MaxBytes         uint64  `json:"max_bytes"`
}

// runEvictionFig measures hit ratio, warm-hit cost, and shard scaling
// of the byte-budgeted cache, and gates the allocation invariants.
func runEvictionFig(quick bool, seed int64) error {
	nKeys, accesses := 4096, 200_000
	scalePer := 400 * time.Millisecond
	if quick {
		nKeys, accesses = 1024, 20_000
		scalePer = 100 * time.Millisecond
	}
	valLen := 64

	d := db.Open(db.Config{DepBound: 5})
	defer d.Close()
	val := kv.Value(make([]byte, valLen))
	txn := d.Begin()
	for i := 0; i < nKeys; i++ {
		if err := txn.Write(workload.ObjectKey(i), val); err != nil {
			return err
		}
	}
	if _, err := txn.Commit(); err != nil {
		return err
	}

	// Budget ~= a quarter of the full set's resident cost: eviction has
	// to run continuously, and the policies differ in whom they keep.
	perEntry := evict.EntryOverhead + len(workload.ObjectKey(0)) + valLen
	budget := int64(nKeys) * int64(perEntry) / 4

	fmt.Printf("Eviction under pressure: %d keys x ~%dB/entry, budget %dKB (~25%% of set), zipf(1.1) x %d accesses\n",
		nKeys, perEntry, budget/1024, accesses)
	fmt.Printf("  %-12s %7s %10s %10s %12s\n", "policy", "hit%", "evictions", "rejects", "resident")

	type variant struct {
		name      string
		maxBytes  int64
		policy    evict.Kind
		admission bool
	}
	variants := []variant{
		{"unbounded", 0, evict.LRU, false},
		{"lru", budget, evict.LRU, false},
		{"clock", budget, evict.Clock, false},
		{"cost", budget, evict.Cost, false},
		{"lru+door", budget, evict.LRU, true},
	}
	hitRows := make([]evictionHitRow, 0, len(variants))
	for _, v := range variants {
		row, err := evictionHitRatio(d, v.maxBytes, v.policy, v.admission, v.name, nKeys, accesses, seed)
		if err != nil {
			return err
		}
		hitRows = append(hitRows, row)
		fmt.Printf("  %-12s %6.1f%% %10d %10d %9dKB\n",
			row.Policy, row.HitPct, row.Evictions, row.AdmissionRejects, row.ResidentBytes/1024)
	}

	// Phase 2: warm-hit allocation gate per policy.
	fmt.Printf("\nWarm-hit cost: validated read (%d reads/txn), bounded vs unbounded\n", telemetryWarmKeys)
	benches := []struct {
		name   string
		kind   evict.Kind
		budget int64
	}{
		{"BenchmarkEvictWarmHitUnbounded", evict.LRU, 0},
		{"BenchmarkEvictWarmHitLRU", evict.LRU, 1 << 20},
		{"BenchmarkEvictWarmHitClock", evict.Clock, 1 << 20},
		{"BenchmarkEvictWarmHitCost", evict.Cost, 1 << 20},
	}
	results := map[string]benchResult{}
	for _, bm := range benches {
		r := testing.Benchmark(benchEvictWarmHit(bm.kind, bm.budget))
		if r.N == 0 {
			return fmt.Errorf("%s ran zero iterations", bm.name)
		}
		res := benchResult{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		results[bm.name] = res
		fmt.Printf("  %-32s %10.0f ns/op %8d B/op %6d allocs/op\n",
			bm.name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}
	base := results["BenchmarkEvictWarmHitUnbounded"].AllocsPerOp
	for _, bm := range benches[1:] {
		if got := results[bm.name].AllocsPerOp; got > base {
			return fmt.Errorf("eviction gate: %s allocates (%d allocs/op vs %d unbounded)", bm.name, got, base)
		}
	}

	// Phase 3: shard scaling of the bounded touch path.
	fmt.Printf("\nShard scaling: 8 clients, warm byte-bounded cache (policy=clock)\n")
	rates := map[int]float64{}
	for _, shards := range []int{1, 8} {
		rate, err := evictionShardRate(d, shards, scalePer)
		if err != nil {
			return err
		}
		rates[shards] = rate
		fmt.Printf("  shards=%d  %12.0f txns/sec\n", shards, rate)
	}
	scaleRatio := rates[8] / rates[1]
	fmt.Printf("  8-shard vs 1-shard: %.2fx\n", scaleRatio)
	// The per-shard budget must not make striping worse than a single
	// mutex. A generous floor: on a single-core runner the two are
	// equivalent; on many cores 8 stripes should win outright.
	if scaleRatio < 0.8 {
		return fmt.Errorf("eviction gate: 8-shard bounded throughput %.2fx of 1-shard (< 0.8)", scaleRatio)
	}

	report := struct {
		Machine    map[string]any         `json:"machine"`
		HitRatio   []evictionHitRow       `json:"hit_ratio"`
		Results    map[string]benchResult `json:"results"`
		ReadsPerOp int                    `json:"reads_per_op"`
		ScaleRatio float64                `json:"shard_scale_8v1"`
	}{
		Machine: map[string]any{
			"go":     runtime.Version(),
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cpus":   runtime.NumCPU(),
		},
		HitRatio:   hitRows,
		Results:    results,
		ReadsPerOp: telemetryWarmKeys,
		ScaleRatio: scaleRatio,
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(evictionBenchOut, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", evictionBenchOut)

	// Absolute ceilings from the checked-in budget file, when present.
	if raw, err := os.ReadFile(telemetryBenchBudget); err == nil {
		var budgets map[string]int64
		if err := json.Unmarshal(raw, &budgets); err != nil {
			return fmt.Errorf("bench budget %s: %w", telemetryBenchBudget, err)
		}
		for name, res := range results {
			if maxAllocs, ok := budgets[name]; ok && res.AllocsPerOp > maxAllocs {
				return fmt.Errorf("bench budget: %s: %d allocs/op exceeds budget %d", name, res.AllocsPerOp, maxAllocs)
			}
		}
	}
	fmt.Printf("eviction gates OK: bounded warm hit %d allocs/op (== unbounded), resident <= budget on every policy\n", base)
	return nil
}

// evictionHitRatio replays a zipfian stream against one cache variant
// and returns its hit row; it fails if resident bytes ever beat the
// budget at the end of the run (the per-insert invariant is exercised
// continuously by the core tests; this is the end-to-end check).
func evictionHitRatio(d *db.DB, maxBytes int64, policy evict.Kind, admission bool, name string, nKeys, accesses int, seed int64) (evictionHitRow, error) {
	cache, err := core.New(core.Config{
		Backend:   d,
		Strategy:  core.StrategyRetry,
		MaxBytes:  maxBytes,
		Policy:    policy,
		Admission: admission,
	})
	if err != nil {
		return evictionHitRow{}, err
	}
	defer cache.Close()

	zipf := rand.NewZipf(rand.New(rand.NewSource(seed)), 1.1, 1, uint64(nKeys-1))
	ctx := context.Background()
	for i := 0; i < accesses; i++ {
		if _, err := cache.Get(ctx, workload.ObjectKey(int(zipf.Uint64()))); err != nil {
			return evictionHitRow{}, err
		}
	}
	m := cache.Metrics()
	row := evictionHitRow{
		Policy:           name,
		HitPct:           100 * float64(m.Hits) / float64(m.Reads),
		Evictions:        m.CapacityEvictions,
		AdmissionRejects: m.AdmissionRejects,
		ResidentBytes:    cache.ResidentBytes(),
		MaxBytes:         cache.MaxBytes(),
	}
	if maxBytes > 0 && row.ResidentBytes > row.MaxBytes {
		return row, fmt.Errorf("policy %s: resident %d bytes exceeds budget %d", name, row.ResidentBytes, row.MaxBytes)
	}
	return row, nil
}

// benchEvictWarmHit is benchCoreWarmHit with a byte budget: the same
// validated-read loop over telemetryWarmKeys warm keys, all of which fit
// under maxBytes, so every read is a budget-managed warm hit.
func benchEvictWarmHit(policy evict.Kind, maxBytes int64) func(b *testing.B) {
	return func(b *testing.B) {
		d := db.Open(db.Config{DepBound: 5})
		b.Cleanup(func() { d.Close() })
		txn := d.Begin()
		keys := make([]kv.Key, telemetryWarmKeys)
		for i := range keys {
			keys[i] = workload.ObjectKey(i)
			if err := txn.Write(keys[i], kv.Value("seed")); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := txn.Commit(); err != nil {
			b.Fatal(err)
		}
		cache, err := core.New(core.Config{
			Backend:  d,
			Strategy: core.StrategyRetry,
			MaxBytes: maxBytes,
			Policy:   policy,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(cache.Close)
		for _, k := range keys {
			if _, err := cache.Get(benchCtx, k); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := kv.TxnID(uint64(i) + 1)
			for r, k := range keys {
				if _, err := cache.Read(benchCtx, id, k, r == len(keys)-1); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// evictionShardRate measures warm-hit txns/sec at 8 clients on a
// byte-bounded CLOCK cache with the given stripe count. The 64-key
// working set fits the budget, so the loop exercises the bounded touch
// path (ref-bit store under the shard lock), not eviction.
func evictionShardRate(d *db.DB, shards int, per time.Duration) (float64, error) {
	nKeys, readsPerTxn := 64, 5
	cache, err := core.New(core.Config{
		Backend:  d,
		Strategy: core.StrategyRetry,
		Shards:   shards,
		MaxBytes: 1 << 20,
		Policy:   evict.Clock,
	})
	if err != nil {
		return 0, err
	}
	defer cache.Close()
	for i := 0; i < nKeys; i++ {
		if _, err := cache.Get(context.Background(), workload.ObjectKey(i)); err != nil {
			return 0, err
		}
	}
	return hitPathRate(cache, 8, nKeys, readsPerTxn, per)
}
