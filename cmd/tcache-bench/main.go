// Command tcache-bench regenerates every table and figure of the paper's
// evaluation section (§V) on the deterministic simulation harness.
//
// Usage:
//
//	tcache-bench                # run everything at paper scale
//	tcache-bench -fig 7c        # one figure: 3, 4, 5, 6, 7ab, 7c, 7d, 8, headline
//	tcache-bench -quick         # scaled-down smoke run
//	tcache-bench -seed 7        # change the simulation seed
//	tcache-bench -fig hitpath -cache-shards 8
//	                            # hot-path throughput vs client concurrency
//	tcache-bench -fig multiedge # M edges × shared writes: per-edge breakdown
//	tcache-bench -fig cluster   # cluster-tier routing overhead → BENCH_pr4.json
//	                            # (-cluster a,b,c -cluster-db d targets a live fleet)
//	tcache-bench -fig writepath # unified Update across DB/Remote/Cache → BENCH_pr5.json
//	tcache-bench -fig durability# WAL group-commit throughput vs writers → BENCH_pr7.json
//	tcache-bench -fig replication
//	                            # commit cost none/async/sync replication
//	                            # + client-visible failover → BENCH_pr8.json
//	tcache-bench -fig telemetry # warm-hit instrumentation overhead gate
//	                            # (0 extra allocs/op) → BENCH_pr9.json
//	tcache-bench -fig eviction  # byte-budgeted cache: hit ratio per policy
//	                            # under zipfian pressure, bounded warm-hit
//	                            # alloc gate, shard scaling → BENCH_pr10.json
//	tcache-bench -benchjson BENCH_pr3.json -bench-budget bench_budget.json
//	                            # machine-readable wire/hit-path numbers
//	                            # (ns/op, B/op, allocs/op) + regression gate
//
// See DESIGN.md for the per-experiment index and EXPERIMENTS.md for
// recorded paper-vs-measured results.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tcache/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tcache-bench:", err)
		os.Exit(1)
	}
}

// cacheShards is the -cache-shards flag, consumed by the hitpath run
// (0 = the core package's default).
var cacheShards int

func run() error {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 3, 4, 5, 6, 7ab, 7c, 7d, 8, headline, album, lru, drop, mv, hitpath, multiedge, cluster, writepath, durability, replication, telemetry, eviction, all")
		quick     = flag.Bool("quick", false, "scaled-down parameters (fast smoke run)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		benchJSON = flag.String("benchjson", "", "run the remote + hit-path benchmarks and write ns/op, B/op, allocs/op JSON to this path (skips -fig)")
		budget    = flag.String("bench-budget", "", "with -benchjson: fail if any benchmark's allocs/op exceeds its budget in this JSON file")
	)
	flag.IntVar(&cacheShards, "cache-shards", 0, "cache lock stripes for the hitpath run (0 = GOMAXPROCS, 1 = single mutex)")
	flag.StringVar(&clusterAddrs, "cluster", "", "comma-separated tcached fleet for the cluster run (default: a self-built loopback fleet; requires -cluster-db)")
	flag.StringVar(&clusterDB, "cluster-db", "", "tdbd address backing the -cluster fleet (used to seed the benchmark key)")
	flag.Parse()

	if *benchJSON != "" {
		return runBenchJSON(*benchJSON, *budget)
	}

	runs := map[string]func(bool, int64) error{
		"3":           runFig3,
		"4":           runFig4,
		"5":           runFig5,
		"6":           runFig6,
		"7ab":         runFig7ab,
		"7c":          runFig7c,
		"7d":          runFig7d,
		"8":           runFig8,
		"headline":    runHeadline,
		"album":       runAlbum,
		"lru":         runLRUAblation,
		"drop":        runDropSweep,
		"mv":          runMultiversion,
		"hitpath":     runHitPath,
		"multiedge":   runMultiEdge,
		"cluster":     runClusterFig,
		"writepath":   runWritePath,
		"durability":  runDurability,
		"replication": runReplication,
		"telemetry":   runTelemetryFig,
		"eviction":    runEvictionFig,
	}
	order := []string{"3", "4", "5", "6", "7ab", "7c", "7d", "8", "headline", "album", "lru", "drop", "mv", "hitpath", "multiedge", "cluster", "writepath", "durability", "replication", "telemetry", "eviction"}

	selected := strings.Split(*fig, ",")
	if *fig == "all" {
		selected = order
	}
	for _, f := range selected {
		fn, ok := runs[f]
		if !ok {
			return fmt.Errorf("unknown figure %q (want one of %s, all)", f, strings.Join(order, ", "))
		}
		start := time.Now()
		if err := fn(*quick, *seed); err != nil {
			return fmt.Errorf("fig %s: %w", f, err)
		}
		fmt.Printf("[fig %s done in %v]\n\n", f, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func runFig3(quick bool, seed int64) error {
	p := experiment.DefaultAlphaParams()
	if quick {
		p = experiment.QuickAlphaParams()
	}
	p.Seed = seed
	res, err := experiment.RunAlphaSweep(context.Background(), p)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	return nil
}

func runFig4(quick bool, seed int64) error {
	p := experiment.DefaultConvergenceParams()
	if quick {
		p = experiment.QuickConvergenceParams()
	}
	p.Seed = seed
	res, err := experiment.RunConvergence(context.Background(), p)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	return nil
}

func runFig5(quick bool, seed int64) error {
	p := experiment.DefaultDriftParams()
	if quick {
		p = experiment.QuickDriftParams()
	}
	p.Seed = seed
	res, err := experiment.RunDrift(context.Background(), p)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	return nil
}

func runFig6(quick bool, seed int64) error {
	p := experiment.DefaultStrategyParams()
	if quick {
		p = experiment.QuickStrategyParams()
	}
	p.Seed = seed
	res, err := experiment.RunStrategyComparison(context.Background(), p)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	return nil
}

func runFig7ab(quick bool, seed int64) error {
	p := experiment.DefaultTopologyParams()
	if quick {
		p = experiment.QuickTopologyParams()
	}
	p.Seed = seed
	ts, err := experiment.DescribeTopologies(p)
	if err != nil {
		return err
	}
	fmt.Print(experiment.TopologyTable(ts))
	return nil
}

func runFig7c(quick bool, seed int64) error {
	p := experiment.DefaultDepSweepParams()
	if quick {
		p = experiment.QuickDepSweepParams()
	}
	p.Seed = seed
	res, err := experiment.RunDepListSweep(context.Background(), p)
	if err != nil {
		return err
	}
	fmt.Print(experiment.DepSweepTable(res))
	return nil
}

func runFig7d(quick bool, seed int64) error {
	p := experiment.DefaultTTLSweepParams()
	if quick {
		p = experiment.QuickTTLSweepParams()
	}
	p.Seed = seed
	res, err := experiment.RunTTLSweep(context.Background(), p)
	if err != nil {
		return err
	}
	fmt.Print(experiment.TTLSweepTable(res))
	return nil
}

func runFig8(quick bool, seed int64) error {
	p := experiment.DefaultRealisticStrategyParams()
	if quick {
		p = experiment.QuickRealisticStrategyParams()
	}
	p.Seed = seed
	res, err := experiment.RunStrategyComparisonRealistic(context.Background(), p)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	return nil
}

func runHeadline(quick bool, seed int64) error {
	p := experiment.DefaultHeadlineParams()
	if quick {
		p = experiment.QuickHeadlineParams()
	}
	p.Seed = seed
	res, err := experiment.RunHeadline(context.Background(), p)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	return nil
}

func runAlbum(quick bool, seed int64) error {
	p := experiment.DefaultAlbumParams()
	if quick {
		p = experiment.QuickAlbumParams()
	}
	p.Seed = seed
	res, err := experiment.RunAlbum(context.Background(), p)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	return nil
}

func runLRUAblation(quick bool, seed int64) error {
	p := experiment.DefaultMergeAblationParams()
	if quick {
		p = experiment.QuickMergeAblationParams()
	}
	p.Drift.Seed = seed
	res, err := experiment.RunMergeAblation(context.Background(), p)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	return nil
}

func runDropSweep(quick bool, seed int64) error {
	p := experiment.DefaultDropSweepParams()
	if quick {
		p = experiment.QuickDropSweepParams()
	}
	p.Seed = seed
	res, err := experiment.RunDropSweep(context.Background(), p)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	return nil
}

func runMultiversion(quick bool, seed int64) error {
	p := experiment.DefaultMultiversionParams()
	if quick {
		p = experiment.QuickMultiversionParams()
	}
	p.Seed = seed
	res, err := experiment.RunMultiversion(context.Background(), p)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	return nil
}

func runMultiEdge(quick bool, seed int64) error {
	p := experiment.DefaultMultiEdgeParams()
	if quick {
		p = experiment.QuickMultiEdgeParams()
	}
	p.Seed = seed
	res, err := experiment.RunMultiEdge(context.Background(), p)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	return nil
}
