package main

// -benchjson: machine-readable perf tracking. Runs the remote (loopback
// wire) and hit-path benchmarks through testing.Benchmark and writes
// ns/op, B/op, allocs/op as JSON, so the perf trajectory of the hot
// paths is recorded per PR (BENCH_pr3.json) instead of living in commit
// messages. An optional budget file turns the run into a regression
// gate: CI fails when a benchmark's allocs/op exceeds its checked-in
// budget.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"tcache"
	"tcache/internal/kv"
	"tcache/internal/workload"
)

// benchResult is one benchmark's measured hot-path cost.
type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchReport is the BENCH_pr3.json document. Baseline is preserved
// verbatim from an existing file, so the gob-era numbers recorded before
// the codec swap stay alongside every regenerated current section.
type benchReport struct {
	Machine  map[string]any         `json:"machine"`
	Baseline json.RawMessage        `json:"baseline_gob,omitempty"`
	Results  map[string]benchResult `json:"results"`
}

func runBenchJSON(outPath, budgetPath string) error {
	fmt.Printf("running wire + hit-path benchmarks (this takes ~10s)\n")
	results := map[string]benchResult{}
	for _, bench := range []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"BenchmarkRemoteReadTxn", benchRemoteReadTxn},
		{"BenchmarkRemoteReadTxnColdSingle", benchRemoteReadTxnColdSingle},
		{"BenchmarkRemoteReadTxnColdMulti", benchRemoteReadTxnColdMulti},
		{"BenchmarkCacheHitRead", benchCacheHitRead},
		{"BenchmarkCachePlainGet", benchCachePlainGet},
	} {
		r := testing.Benchmark(bench.fn)
		if r.N == 0 {
			// b.Fatal inside the body yields a zero result; surface the
			// benchmark's name instead of a NaN that breaks marshalling.
			return fmt.Errorf("%s failed (ran zero iterations)", bench.name)
		}
		res := benchResult{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		results[bench.name] = res
		fmt.Printf("  %-36s %12.0f ns/op %8d B/op %6d allocs/op\n",
			bench.name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}

	report := benchReport{
		Machine: map[string]any{
			"go":     runtime.Version(),
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cpus":   runtime.NumCPU(),
		},
		Results: results,
	}
	// Preserve the recorded gob baseline if the file already carries one.
	if prev, err := os.ReadFile(outPath); err == nil {
		var old struct {
			Baseline json.RawMessage `json:"baseline_gob"`
		}
		if json.Unmarshal(prev, &old) == nil && len(old.Baseline) > 0 {
			report.Baseline = old.Baseline
		}
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)

	if budgetPath == "" {
		return nil
	}
	return checkBenchBudget(budgetPath, results)
}

// checkBenchBudget fails when any benchmark allocates more per op than
// its checked-in budget allows — the warm-hit allocation regression gate.
func checkBenchBudget(path string, results map[string]benchResult) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench budget: %w", err)
	}
	var budget map[string]int64
	if err := json.Unmarshal(raw, &budget); err != nil {
		return fmt.Errorf("bench budget %s: %w", path, err)
	}
	var failures []string
	checked := 0
	for name, maxAllocs := range budget {
		if strings.HasPrefix(name, "BenchmarkCluster") {
			continue // gated by the cluster runner (-fig cluster)
		}
		if strings.HasPrefix(name, "BenchmarkWritePath") {
			continue // gated by the write-path runner (-fig writepath)
		}
		if strings.HasPrefix(name, "BenchmarkWarmHitTelemetry") {
			continue // gated by the telemetry runner (-fig telemetry)
		}
		if strings.HasPrefix(name, "BenchmarkDurableCommit") {
			continue // gated by the durability/replication runners
		}
		if strings.HasPrefix(name, "BenchmarkEvict") {
			continue // gated by the eviction runner (-fig eviction)
		}
		checked++
		res, ok := results[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: budgeted but not measured", name))
			continue
		}
		if res.AllocsPerOp > maxAllocs {
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op exceeds budget %d", name, res.AllocsPerOp, maxAllocs))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "budget FAIL:", f)
		}
		return fmt.Errorf("bench budget: %d regression(s)", len(failures))
	}
	fmt.Printf("bench budget OK (%d benchmarks within allocs/op budget)\n", checked)
	return nil
}

// --- Benchmark bodies ---------------------------------------------------
//
// These mirror the root-package benchmarks (bench_test.go) through the
// public API; they live here because a main package cannot invoke _test
// code, and testing.Benchmark needs plain funcs.

var benchCtx = context.Background()

// remoteStack builds the paper's deployment over loopback: a served DB,
// a Dial-attached Remote, and a T-Cache on top.
func remoteStack(b *testing.B, nKeys int) *tcache.Cache {
	b.Helper()
	d := tcache.OpenDB(tcache.WithDepListBound(5))
	b.Cleanup(func() { d.Close() })
	addr, stop, err := tcache.ServeDB(d, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(stop)
	remote, err := tcache.Dial(benchCtx, addr)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(remote.Close)
	cache, err := tcache.NewCache(remote, tcache.WithStrategy(tcache.StrategyRetry))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cache.Close)
	if err := d.Update(benchCtx, func(tx *tcache.Tx) error {
		for i := 0; i < nKeys; i++ {
			if err := tx.Set(workload.ObjectKey(i), kv.Value("seed")); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	return cache
}

func benchKeys(n int) []tcache.Key {
	keys := make([]tcache.Key, n)
	for i := range keys {
		keys[i] = workload.ObjectKey(i)
	}
	return keys
}

func benchRemoteReadTxn(b *testing.B) {
	cache := remoteStack(b, 5)
	keys := benchKeys(5)
	for _, k := range keys {
		if _, err := cache.Get(benchCtx, k); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cache.ReadTxn(benchCtx, func(tx *tcache.ReadTx) error {
			for _, k := range keys {
				if _, err := tx.Get(benchCtx, k); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRemoteReadTxnColdSingle(b *testing.B) {
	cache := remoteStack(b, 5)
	keys := benchKeys(5)
	evict := kv.Version{Counter: ^uint64(0) - 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range keys {
			cache.Invalidate(k, evict)
		}
		if err := cache.ReadTxn(benchCtx, func(tx *tcache.ReadTx) error {
			for _, k := range keys {
				if _, err := tx.Get(benchCtx, k); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRemoteReadTxnColdMulti(b *testing.B) {
	cache := remoteStack(b, 5)
	keys := benchKeys(5)
	evict := kv.Version{Counter: ^uint64(0) - 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range keys {
			cache.Invalidate(k, evict)
		}
		if err := cache.ReadTxn(benchCtx, func(tx *tcache.ReadTx) error {
			_, err := tx.GetMulti(benchCtx, keys...)
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// localCache attaches a cache to an in-process DB with warmed keys.
func localCache(b *testing.B, nKeys int) *tcache.Cache {
	b.Helper()
	d := tcache.OpenDB(tcache.WithDepListBound(5))
	b.Cleanup(func() { d.Close() })
	cache, err := tcache.NewCache(d, tcache.WithStrategy(tcache.StrategyRetry))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cache.Close)
	if err := d.Update(benchCtx, func(tx *tcache.Tx) error {
		for i := 0; i < nKeys; i++ {
			if err := tx.Set(workload.ObjectKey(i), kv.Value("seed")); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < nKeys; i++ {
		if _, err := cache.Get(benchCtx, workload.ObjectKey(i)); err != nil {
			b.Fatal(err)
		}
	}
	return cache
}

func benchCacheHitRead(b *testing.B) {
	cache := localCache(b, 5)
	keys := benchKeys(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cache.ReadTxn(benchCtx, func(tx *tcache.ReadTx) error {
			for _, k := range keys {
				if _, err := tx.Get(benchCtx, k); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCachePlainGet(b *testing.B) {
	cache := localCache(b, 5)
	keys := benchKeys(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Get(benchCtx, keys[i%5]); err != nil {
			b.Fatal(err)
		}
	}
}
