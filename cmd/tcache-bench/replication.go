package main

// -fig replication: the replicated-DB-tier benchmark. It measures what
// streaming replication costs the commit path — a durable primary
// alone, the same primary with a warm standby tailing its WAL
// asynchronously, and with ReplMinSync=1 where every commit waits for
// the standby's acknowledgment — and how long a client-visible
// failover takes: from SIGKILL-equivalent primary loss to a committed
// write on the promoted standby through the failover-aware Dial.
//
// Results go to BENCH_pr8.json. Three gates run here:
//   - the async standby must fully converge after the run (zero
//     acked-write loss: the replicated counter reaches the primary's);
//   - after the sync run the primary's lag metric must read 0 (each
//     commit really waited for the ack);
//   - the measured failover must complete within maxFailover.
//
// Matching entries in bench_budget.json additionally gate allocs/op.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"tcache"
	"tcache/internal/db"
	"tcache/internal/kv"
	"tcache/internal/transport"
)

const replicationBenchOut = "BENCH_pr8.json"

// maxFailover bounds the measured client-visible failover on loopback:
// primary death → promotion → first committed write through the
// failover-aware client. Deliberately loose (CI boxes stall); the point
// is to fail if failover stops converging promptly at all.
const maxFailover = 5 * time.Second

// replicationResult is one commit-path measurement in BENCH_pr8.json.
type replicationResult struct {
	benchResult
	Mode          string  `json:"mode"` // none | async | sync
	CommitsPerSec float64 `json:"commits_per_sec"`
}

// replRig is a served primary with an optional streaming standby, torn
// down in reverse order by close().
type replRig struct {
	primary *db.DB
	standby *db.DB
	cleanup []func()
}

func (r *replRig) close() {
	for i := len(r.cleanup) - 1; i >= 0; i-- {
		r.cleanup[i]()
	}
}

// newReplRig builds the primary (durable, WALSync) and, for the async
// and sync modes, a standby replicating from it over loopback. It
// blocks until a probe commit proves the pipeline is live, so the
// benchmark loop never measures connection setup.
func newReplRig(mode string) (*replRig, error) {
	r := &replRig{}
	pdir, err := os.MkdirTemp("", "tcache-bench-repl-p")
	if err != nil {
		return nil, err
	}
	r.cleanup = append(r.cleanup, func() { os.RemoveAll(pdir) })
	cfg := db.Config{DepBound: 5, WALSync: true}
	if mode == "sync" {
		cfg.ReplMinSync = 1
	}
	r.primary, err = db.Recover(cfg, pdir)
	if err != nil {
		r.close()
		return nil, err
	}
	r.cleanup = append(r.cleanup, func() { r.primary.Close() })

	if mode != "none" {
		srv := transport.NewDBServer(r.primary, nil)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			r.close()
			return nil, err
		}
		r.cleanup = append(r.cleanup, srv.Close)

		sdir, err := os.MkdirTemp("", "tcache-bench-repl-s")
		if err != nil {
			r.close()
			return nil, err
		}
		r.cleanup = append(r.cleanup, func() { os.RemoveAll(sdir) })
		r.standby, err = db.Recover(db.Config{DepBound: 5, NodeID: 1}, sdir)
		if err != nil {
			r.close()
			return nil, err
		}
		r.cleanup = append(r.cleanup, func() { r.standby.Close() })
		r.standby.SetStandby(addr)

		sctx, scancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			transport.RunStandby(sctx, r.standby, transport.StandbyConfig{
				Primary: addr, Name: "bench-standby",
			})
		}()
		r.cleanup = append(r.cleanup, func() { scancel(); <-done })
	}

	// Probe until the first commit lands (and, in sync mode, is acked).
	deadline := time.Now().Add(10 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_, err := r.primary.ValidatedUpdate(ctx, nil,
			[]kv.KeyValue{{Key: "probe", Value: kv.Value("warm")}})
		cancel()
		if err == nil {
			return r, nil
		}
		if time.Now().After(deadline) {
			r.close()
			return nil, fmt.Errorf("replication pipeline never came up: %w", err)
		}
	}
}

// benchReplCommit runs b.N durable commits in the given replication
// mode from a single writer: the per-commit number includes the fsync
// and, in sync mode, the standby's acknowledgment round trip.
func benchReplCommit(mode string) func(b *testing.B) {
	return func(b *testing.B) {
		rig, err := newReplRig(mode)
		if err != nil {
			b.Fatal(err)
		}
		defer rig.close()

		val := kv.Value("payload-of-a-plausible-size-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxx")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_, err := rig.primary.ValidatedUpdate(ctx, nil,
				[]kv.KeyValue{{Key: "bench", Value: val}})
			cancel()
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()

		switch mode {
		case "async":
			// Convergence gate: every commit the primary acknowledged
			// must reach the standby once the stream drains.
			deadline := time.Now().Add(10 * time.Second)
			for rig.standby.VersionCounter() < rig.primary.VersionCounter() {
				if time.Now().After(deadline) {
					b.Fatalf("async standby stuck at %d, primary at %d",
						rig.standby.VersionCounter(), rig.primary.VersionCounter())
				}
				time.Sleep(2 * time.Millisecond)
			}
		case "sync":
			// Each commit waited for the ack, so the lag metric must
			// already read zero — no drain allowed.
			if lag := rig.primary.ReplStatusNow().Lag; lag != 0 {
				b.Fatalf("sync replication finished with lag %d", lag)
			}
		}
	}
}

// measureFailover times the client-visible failover: a Remote dialed
// with both addresses commits through the primary, the primary dies,
// the standby is promoted, and the clock stops at the first committed
// write on the survivor.
func measureFailover() (time.Duration, error) {
	ctx := context.Background()
	pdir, err := os.MkdirTemp("", "tcache-bench-failover-p")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(pdir)
	sdir, err := os.MkdirTemp("", "tcache-bench-failover-s")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(sdir)

	primary, err := tcache.OpenDurableDB(pdir)
	if err != nil {
		return 0, err
	}
	defer primary.Close()
	paddr, stopPrimary, err := tcache.ServeDB(primary, "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer stopPrimary()

	standby, err := tcache.OpenDurableDB(sdir)
	if err != nil {
		return 0, err
	}
	defer standby.Close()
	standby.Core().SetStandby(paddr)
	saddr, stopStandby, err := tcache.ServeDB(standby, "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer stopStandby()
	sctx, scancel := context.WithCancel(ctx)
	standbyDone := make(chan struct{})
	go func() {
		defer close(standbyDone)
		transport.RunStandby(sctx, standby.Core(), transport.StandbyConfig{
			Primary: paddr, Name: saddr,
		})
	}()
	defer func() { scancel(); <-standbyDone }()

	remote, err := tcache.Dial(ctx, paddr+","+saddr,
		tcache.WithDialRetry(3, 20*time.Millisecond))
	if err != nil {
		return 0, err
	}
	defer remote.Close()
	if err := remote.Update(ctx, func(tx *tcache.Tx) error {
		return tx.Set("k", tcache.Value("v"))
	}); err != nil {
		return 0, err
	}
	deadline := time.Now().Add(10 * time.Second)
	for standby.Core().VersionCounter() < primary.Core().VersionCounter() {
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("standby never caught up before the failover measurement")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The measured window: crash → promote → first committed write.
	start := time.Now()
	stopPrimary()
	if _, err := standby.Core().Promote(); err != nil {
		return 0, err
	}
	for {
		wctx, cancel := context.WithTimeout(ctx, time.Second)
		err := remote.Update(wctx, func(tx *tcache.Tx) error {
			return tx.Set("k", tcache.Value("v2"))
		})
		cancel()
		if err == nil {
			return time.Since(start), nil
		}
		if time.Since(start) > maxFailover {
			return 0, fmt.Errorf("no committed write within %s of primary loss: %v", maxFailover, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// runReplication measures the commit path in each replication mode and
// the end-to-end failover time, writes BENCH_pr8.json, and applies the
// gates.
func runReplication(quick bool, seed int64) error {
	_ = seed // no simulation randomness on this path
	_ = quick
	modes := []string{"none", "async", "sync"}
	fmt.Printf("running replicated-tier benchmarks (WAL streaming over loopback)\n")

	results := map[string]benchResult{}
	sweep := make([]replicationResult, 0, len(modes))
	for _, mode := range modes {
		name := fmt.Sprintf("BenchmarkDurableCommitRepl_%s", mode)
		r := testing.Benchmark(benchReplCommit(mode))
		if r.N == 0 {
			return fmt.Errorf("%s failed (ran zero iterations)", name)
		}
		res := replicationResult{
			benchResult: benchResult{
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			},
			Mode: mode,
		}
		res.CommitsPerSec = 1e9 / res.NsPerOp
		results[name] = res.benchResult
		sweep = append(sweep, res)
		fmt.Printf("  %-34s %10.0f commits/s %8.0f ns/op %5d allocs/op\n",
			name, res.CommitsPerSec, res.NsPerOp, res.AllocsPerOp)
	}

	failover, err := measureFailover()
	if err != nil {
		return fmt.Errorf("failover measurement: %w", err)
	}
	fmt.Printf("  client-visible failover: %s (crash -> promote -> committed write)\n",
		failover.Round(time.Millisecond))

	report := struct {
		Machine    map[string]any      `json:"machine"`
		Results    []replicationResult `json:"results"`
		FailoverMs float64             `json:"failover_ms"`
	}{
		Machine: map[string]any{
			"go":     runtime.Version(),
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cpus":   runtime.NumCPU(),
		},
		Results:    sweep,
		FailoverMs: float64(failover.Microseconds()) / 1e3,
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(replicationBenchOut, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", replicationBenchOut)

	// Allocs/op against bench_budget.json (convergence and lag gates ran
	// inside the benchmarks; the failover bound ran above).
	if budgetRaw, err := os.ReadFile("bench_budget.json"); err == nil {
		var budget map[string]int64
		if json.Unmarshal(budgetRaw, &budget) == nil {
			scoped := map[string]int64{}
			for name, max := range budget {
				if _, ok := results[name]; ok {
					scoped[name] = max
				}
			}
			if len(scoped) > 0 {
				if err := checkScopedBudget(scoped, results); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
