package main

// -fig durability: the storage-engine benchmark. It measures what a
// commit costs when it must be durable — appended to the segmented
// write-ahead log and fsynced before the transaction is acknowledged —
// and how group commit amortizes that cost across concurrent writers:
// with one writer every commit pays its own fsync; with 16, committers
// landing in the same batch share one.
//
// Results go to BENCH_pr7.json. Two gates run here:
//   - fsyncs-per-commit at 16 writers must stay ≤ 0.9 (group commit is
//     actually coalescing, not serializing);
//   - matching entries in bench_budget.json gate allocs/op.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"tcache/internal/db"
	"tcache/internal/kv"
)

const durabilityBenchOut = "BENCH_pr7.json"

// maxFsyncsPerCommit16 is the coalescing gate: at 16 concurrent
// writers, well under one fsync per commit must be issued. The bound is
// deliberately loose (a 1-core box coalesces less) — the point is to
// fail if group commit stops batching at all.
const maxFsyncsPerCommit16 = 0.9

// durabilityResult is one writer-count measurement in BENCH_pr7.json.
type durabilityResult struct {
	benchResult
	Writers         int     `json:"writers"`
	CommitsPerSec   float64 `json:"commits_per_sec"`
	FsyncsPerCommit float64 `json:"fsyncs_per_commit"`
}

// benchDurableCommit runs b.N sync-mode commits split across `writers`
// goroutines (disjoint keys: this measures the log, not lock
// contention) and reports the WAL fsync count through *fsyncsPerCommit.
func benchDurableCommit(writers int, fsyncsPerCommit *float64) func(b *testing.B) {
	return func(b *testing.B) {
		dir, err := os.MkdirTemp("", "tcache-bench-wal")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		d, err := db.Recover(db.Config{DepBound: 5, WALSync: true}, dir)
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()

		b.ReportAllocs()
		b.ResetTimer()
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			share := b.N / writers
			if w < b.N%writers {
				share++
			}
			wg.Add(1)
			go func(w, share int) {
				defer wg.Done()
				key := kv.Key(fmt.Sprintf("w%d", w))
				val := kv.Value("payload-of-a-plausible-size-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxx")
				for i := 0; i < share; i++ {
					tx := d.Begin()
					if err := tx.Write(key, val); err != nil {
						b.Error(err)
						return
					}
					if _, err := tx.Commit(); err != nil {
						b.Error(err)
						return
					}
				}
			}(w, share)
		}
		wg.Wait()
		b.StopTimer()
		m := d.Metrics()
		if m.WALRecords > 0 {
			*fsyncsPerCommit = float64(m.WALFsyncs) / float64(m.WALRecords)
		}
	}
}

// runDurability measures sync-commit throughput at increasing writer
// counts, writes BENCH_pr7.json, and applies the coalescing and
// allocs/op gates.
func runDurability(quick bool, seed int64) error {
	_ = seed // no simulation randomness on this path
	writerCounts := []int{1, 2, 4, 8, 16}
	if quick {
		writerCounts = []int{1, 16}
	}
	fmt.Printf("running durable-commit benchmarks (Sync WAL, group commit)\n")

	results := map[string]benchResult{}
	sweep := make([]durabilityResult, 0, len(writerCounts))
	for _, w := range writerCounts {
		name := fmt.Sprintf("BenchmarkDurableCommitSync%d", w)
		var fpc float64
		r := testing.Benchmark(benchDurableCommit(w, &fpc))
		if r.N == 0 {
			return fmt.Errorf("%s failed (ran zero iterations)", name)
		}
		res := durabilityResult{
			benchResult: benchResult{
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			},
			Writers:         w,
			FsyncsPerCommit: fpc,
		}
		res.CommitsPerSec = 1e9 / res.NsPerOp
		results[name] = res.benchResult
		sweep = append(sweep, res)
		fmt.Printf("  %-32s %10.0f commits/s %8.0f ns/op %6.3f fsyncs/commit %5d allocs/op\n",
			name, res.CommitsPerSec, res.NsPerOp, res.FsyncsPerCommit, res.AllocsPerOp)
	}

	report := struct {
		Machine map[string]any     `json:"machine"`
		Results []durabilityResult `json:"results"`
	}{
		Machine: map[string]any{
			"go":     runtime.Version(),
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cpus":   runtime.NumCPU(),
		},
		Results: sweep,
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(durabilityBenchOut, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", durabilityBenchOut)

	// Gate 1: group commit must coalesce under concurrency.
	last := sweep[len(sweep)-1]
	if last.Writers >= 16 && last.FsyncsPerCommit > maxFsyncsPerCommit16 {
		return fmt.Errorf("group commit not coalescing: %.3f fsyncs/commit at %d writers (budget %.2f)",
			last.FsyncsPerCommit, last.Writers, maxFsyncsPerCommit16)
	}

	// Gate 2: allocs/op against bench_budget.json.
	if budgetRaw, err := os.ReadFile("bench_budget.json"); err == nil {
		var budget map[string]int64
		if json.Unmarshal(budgetRaw, &budget) == nil {
			scoped := map[string]int64{}
			for name, max := range budget {
				if _, ok := results[name]; ok {
					scoped[name] = max
				}
			}
			if len(scoped) > 0 {
				if err := checkScopedBudget(scoped, results); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
