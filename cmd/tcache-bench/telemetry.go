package main

// -fig telemetry: the observability overhead gate. Runs the warm-hit
// validated read — the hottest path in the system — twice through
// testing.Benchmark, once with Config.Telemetry nil and once with the
// full histogram set attached, and fails if instrumentation costs even
// one allocation per op. The measured pair is written to BENCH_pr9.json
// so the overhead trajectory is recorded per PR, and any entries in
// bench_budget.json gate the absolute allocs/op as well.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"tcache/internal/core"
	"tcache/internal/db"
	"tcache/internal/kv"
	"tcache/internal/workload"
)

const (
	telemetryBenchOut    = "BENCH_pr9.json"
	telemetryBenchBudget = "bench_budget.json"
	telemetryWarmKeys    = 5
)

// benchCoreWarmHit builds a warm core cache and drives the validated
// read loop (telemetryWarmKeys reads per committed txn, all hits). The
// same body serves both modes; only tel differs.
func benchCoreWarmHit(tel *core.Telemetry) func(b *testing.B) {
	return func(b *testing.B) {
		d := db.Open(db.Config{DepBound: 5})
		b.Cleanup(func() { d.Close() })
		txn := d.Begin()
		keys := make([]kv.Key, telemetryWarmKeys)
		for i := range keys {
			keys[i] = workload.ObjectKey(i)
			if err := txn.Write(keys[i], kv.Value("seed")); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := txn.Commit(); err != nil {
			b.Fatal(err)
		}
		cache, err := core.New(core.Config{
			Backend:   d,
			Strategy:  core.StrategyRetry,
			Telemetry: tel,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(cache.Close)
		for _, k := range keys {
			if _, err := cache.Get(benchCtx, k); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := kv.TxnID(uint64(i) + 1)
			for r, k := range keys {
				if _, err := cache.Read(benchCtx, id, k, r == len(keys)-1); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// runTelemetryFig measures and gates the instrumentation overhead.
func runTelemetryFig(_ bool, _ int64) error {
	fmt.Printf("Telemetry overhead: warm-hit validated read (%d reads/txn), instrumented vs off\n", telemetryWarmKeys)

	rOff := testing.Benchmark(benchCoreWarmHit(nil))
	tel := core.NewTelemetry()
	rOn := testing.Benchmark(benchCoreWarmHit(tel))
	if rOff.N == 0 || rOn.N == 0 {
		return fmt.Errorf("warm-hit benchmark failed (ran zero iterations)")
	}
	// The gate is only meaningful if the instrumented run actually took
	// the instrumented path.
	if warm := tel.ReadWarm.Snapshot(); warm.Count() == 0 {
		return fmt.Errorf("instrumented run recorded no warm hits — the gate measured nothing")
	}

	results := map[string]benchResult{}
	for _, row := range []struct {
		name string
		r    testing.BenchmarkResult
	}{
		{"BenchmarkWarmHitTelemetryOff", rOff},
		{"BenchmarkWarmHitTelemetryOn", rOn},
	} {
		res := benchResult{
			NsPerOp:     float64(row.r.T.Nanoseconds()) / float64(row.r.N),
			BytesPerOp:  row.r.AllocedBytesPerOp(),
			AllocsPerOp: row.r.AllocsPerOp(),
		}
		results[row.name] = res
		fmt.Printf("  %-32s %10.0f ns/op %8d B/op %6d allocs/op\n",
			row.name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}
	overhead := results["BenchmarkWarmHitTelemetryOn"].NsPerOp - results["BenchmarkWarmHitTelemetryOff"].NsPerOp
	fmt.Printf("  overhead: %+.0f ns per %d-read txn (%+.1f ns/read)\n",
		overhead, telemetryWarmKeys, overhead/telemetryWarmKeys)

	report := struct {
		Machine    map[string]any         `json:"machine"`
		Results    map[string]benchResult `json:"results"`
		ReadsPerOp int                    `json:"reads_per_op"`
		OverheadNs float64                `json:"overhead_ns_per_op"`
	}{
		Machine: map[string]any{
			"go":     runtime.Version(),
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cpus":   runtime.NumCPU(),
		},
		Results:    results,
		ReadsPerOp: telemetryWarmKeys,
		OverheadNs: overhead,
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(telemetryBenchOut, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", telemetryBenchOut)

	// The hard budget: instrumentation may not allocate. Absolute ceilings
	// come from bench_budget.json when it is present (CI runs from the
	// repo root).
	dOff, dOn := results["BenchmarkWarmHitTelemetryOff"].AllocsPerOp, results["BenchmarkWarmHitTelemetryOn"].AllocsPerOp
	if dOn > dOff {
		return fmt.Errorf("telemetry overhead: instrumented warm hit allocates (%d allocs/op vs %d off)", dOn, dOff)
	}
	if raw, err := os.ReadFile(telemetryBenchBudget); err == nil {
		var budget map[string]int64
		if err := json.Unmarshal(raw, &budget); err != nil {
			return fmt.Errorf("bench budget %s: %w", telemetryBenchBudget, err)
		}
		for name, res := range results {
			if maxAllocs, ok := budget[name]; ok && res.AllocsPerOp > maxAllocs {
				return fmt.Errorf("bench budget: %s: %d allocs/op exceeds budget %d", name, res.AllocsPerOp, maxAllocs)
			}
		}
	}
	fmt.Printf("telemetry overhead gate OK: %d allocs/op instrumented == %d off\n", dOn, dOff)
	return nil
}
