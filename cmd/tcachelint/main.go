// Command tcachelint runs the repository's static-analysis suite: the
// analyzers in internal/lint that enforce the lock hierarchy, the
// no-blocking-under-lock rule, context discipline, the copy-on-write
// read contract, hot-path allocation budgets, and wire-protocol
// exhaustiveness. Run it from the module root:
//
//	tcachelint ./...
//	tcachelint -analyzers lockorder,hotalloc ./internal/core/...
//
// Exit status is 1 when any finding survives //lint:ignore suppression,
// 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tcache/internal/lint"
)

func main() {
	var (
		names   = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		noTests = flag.Bool("notests", false, "skip _test.go files")
		list    = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All
	if *names != "" {
		analyzers = nil
		for _, name := range strings.Split(*names, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "tcachelint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcachelint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(dir, patterns, analyzers, !*noTests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcachelint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tcachelint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
