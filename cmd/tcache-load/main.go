// Command tcache-load drives a live tdbd + tcached deployment with the
// paper's §IV workload shape (clustered 5-object transactions, a given
// update/read mix) and reports throughput, abort rate, and latency
// percentiles. It is the real-time counterpart of the simulation harness:
// use it to measure an actual deployment on real hardware.
//
// Usage:
//
//	tcache-load -db 127.0.0.1:7070 -cache 127.0.0.1:7071 \
//	            -duration 10s -readers 8 -updaters 2 -objects 2000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"tcache/internal/kv"
	"tcache/internal/stats"
	"tcache/internal/transport"
	"tcache/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tcache-load:", err)
		os.Exit(1)
	}
}

type counters struct {
	mu        sync.Mutex
	updates   int
	commits   int
	aborts    int
	readLat   stats.Sample
	updateLat stats.Sample
}

func run() error {
	ctx := context.Background()
	var (
		dbAddr      = flag.String("db", "127.0.0.1:7070", "tdbd address")
		cacheAddr   = flag.String("cache", "127.0.0.1:7071", "tcached address")
		duration    = flag.Duration("duration", 10*time.Second, "load duration")
		readers     = flag.Int("readers", 8, "read-only client goroutines")
		updaters    = flag.Int("updaters", 2, "update client goroutines")
		objects     = flag.Int("objects", 2000, "object count")
		clusterSize = flag.Int("cluster", 5, "cluster size")
		txnSize     = flag.Int("txn", 5, "objects per transaction")
		seed        = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	dbCli, err := transport.DialDB(ctx, *dbAddr, *updaters+1)
	if err != nil {
		return err
	}
	defer dbCli.Close()
	if err := dbCli.Ping(ctx); err != nil {
		return fmt.Errorf("tdbd unreachable: %w", err)
	}

	// Seed the key space.
	gen := &workload.PerfectClusters{Objects: *objects, ClusterSize: *clusterSize, TxnSize: *txnSize}
	fmt.Printf("seeding %d objects...\n", *objects)
	for _, k := range workload.AllObjectKeys(*objects) {
		if _, err := dbCli.Update(ctx, nil, []transport.KeyValue{{Key: k, Value: kv.Value("seed")}}); err != nil {
			return fmt.Errorf("seed %s: %w", k, err)
		}
	}

	var (
		c    counters
		wg   sync.WaitGroup
		stop = time.Now().Add(*duration)
	)

	for u := 0; u < *updaters; u++ {
		u := u
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(u)))
			for time.Now().Before(stop) {
				keys := dedup(gen.Pick(rng))
				writes := make([]transport.KeyValue, len(keys))
				for i, k := range keys {
					writes[i] = transport.KeyValue{Key: k, Value: kv.Value(fmt.Sprintf("u%d", rng.Int63()))}
				}
				t0 := time.Now()
				if _, err := dbCli.Update(ctx, keys, writes); err != nil &&
					!errors.Is(err, transport.ErrConflict) {
					fmt.Fprintln(os.Stderr, "update:", err)
					return
				}
				c.mu.Lock()
				c.updates++
				c.updateLat.Add(float64(time.Since(t0).Microseconds()))
				c.mu.Unlock()
			}
		}()
	}

	for r := 0; r < *readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := transport.DialCache(ctx, *cacheAddr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dial cache:", err)
				return
			}
			defer cli.Close()
			rng := rand.New(rand.NewSource(*seed + 1000 + int64(r)))
			for time.Now().Before(stop) {
				keys := gen.Pick(rng)
				id := cli.NewTxnID()
				t0 := time.Now()
				aborted := false
				// One round trip per transaction (OpReadMulti).
				if _, err := cli.ReadMulti(ctx, id, keys, true); err != nil {
					if !errors.Is(err, transport.ErrAborted) {
						fmt.Fprintln(os.Stderr, "read:", err)
						return
					}
					aborted = true
				}
				c.mu.Lock()
				if aborted {
					c.aborts++
				} else {
					c.commits++
				}
				c.readLat.Add(float64(time.Since(t0).Microseconds()))
				c.mu.Unlock()
			}
		}()
	}
	wg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	secs := duration.Seconds()
	fmt.Printf("\n--- %v of load ---\n", *duration)
	fmt.Printf("update txns:     %8d (%.0f/s), latency[us] %s\n",
		c.updates, float64(c.updates)/secs, c.updateLat.String())
	fmt.Printf("read txns:       %8d (%.0f/s), latency[us] %s\n",
		c.commits+c.aborts, float64(c.commits+c.aborts)/secs, c.readLat.String())
	fmt.Printf("aborted (stale): %8d (%.2f%%)\n",
		c.aborts, 100*float64(c.aborts)/float64(max(1, c.commits+c.aborts)))

	cli, err := transport.DialCache(ctx, *cacheAddr)
	if err == nil {
		defer cli.Close()
		if s, err := cli.Stats(ctx); err == nil {
			hits, misses := s["hits"], s["misses"]
			if hits+misses > 0 {
				fmt.Printf("cache hit ratio: %.3f (detected %d, retries %d)\n",
					float64(hits)/float64(hits+misses), s["detected"], s["retries"])
			}
		}
	}
	return nil
}

func dedup(keys []kv.Key) []kv.Key {
	seen := make(map[kv.Key]struct{}, len(keys))
	out := keys[:0:len(keys)]
	for _, k := range keys {
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, k)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
