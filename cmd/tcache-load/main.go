// Command tcache-load drives a live tdbd + tcached deployment with the
// paper's §IV workload shape (clustered 5-object transactions, a given
// update/read mix) and reports throughput, abort rate, and latency
// percentiles. It is the real-time counterpart of the simulation harness:
// use it to measure an actual deployment on real hardware.
//
// Usage:
//
//	tcache-load -db 127.0.0.1:7070 -cache 127.0.0.1:7071 \
//	            -duration 10s -readers 8 -updaters 2 -objects 2000
//
// With -cluster, readers attach one local T-Cache to a whole fleet of
// tcached nodes through the consistent-hash routing tier (updates still
// go to -db):
//
//	tcache-load -db 127.0.0.1:7070 -cluster edge1:7071,edge2:7071,edge3:7071
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"tcache"
	"tcache/internal/cluster"
	"tcache/internal/kv"
	"tcache/internal/stats"
	"tcache/internal/transport"
	"tcache/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tcache-load:", err)
		os.Exit(1)
	}
}

type counters struct {
	mu        sync.Mutex
	updates   int
	commits   int
	aborts    int
	readLat   stats.Sample
	updateLat stats.Sample
}

func run() error {
	ctx := context.Background()
	var (
		dbAddr      = flag.String("db", "127.0.0.1:7070", "tdbd address")
		cacheAddr   = flag.String("cache", "127.0.0.1:7071", "tcached address")
		clusterFl   = flag.String("cluster", "", "comma-separated tcached fleet; readers route through the cluster tier instead of -cache")
		duration    = flag.Duration("duration", 10*time.Second, "load duration")
		readers     = flag.Int("readers", 8, "read-only client goroutines")
		updaters    = flag.Int("updaters", 2, "update client goroutines")
		objects     = flag.Int("objects", 2000, "object count")
		clusterSize = flag.Int("cluster-size", 5, "workload cluster size (objects per affinity cluster)")
		txnSize     = flag.Int("txn", 5, "objects per transaction")
		seed        = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	clusterAddrs := cluster.SplitAddrs(*clusterFl)

	dbCli, err := transport.DialDB(ctx, *dbAddr, *updaters+1)
	if err != nil {
		return err
	}
	defer dbCli.Close()
	if err := dbCli.Ping(ctx); err != nil {
		return fmt.Errorf("tdbd unreachable: %w", err)
	}

	// Seed the key space.
	gen := &workload.PerfectClusters{Objects: *objects, ClusterSize: *clusterSize, TxnSize: *txnSize}
	fmt.Printf("seeding %d objects...\n", *objects)
	for _, k := range workload.AllObjectKeys(*objects) {
		if _, err := dbCli.Update(ctx, nil, []transport.KeyValue{{Key: k, Value: kv.Value("seed")}}); err != nil {
			return fmt.Errorf("seed %s: %w", k, err)
		}
	}

	var (
		c    counters
		wg   sync.WaitGroup
		stop = time.Now().Add(*duration)
	)

	for u := 0; u < *updaters; u++ {
		u := u
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(u)))
			for time.Now().Before(stop) {
				keys := dedup(gen.Pick(rng))
				writes := make([]transport.KeyValue, len(keys))
				for i, k := range keys {
					writes[i] = transport.KeyValue{Key: k, Value: kv.Value(fmt.Sprintf("u%d", rng.Int63()))}
				}
				t0 := time.Now()
				if _, err := dbCli.Update(ctx, keys, writes); err != nil &&
					!errors.Is(err, transport.ErrConflict) {
					fmt.Fprintln(os.Stderr, "update:", err)
					return
				}
				c.mu.Lock()
				c.updates++
				c.updateLat.Add(float64(time.Since(t0).Microseconds()))
				c.mu.Unlock()
			}
		}()
	}

	// In cluster mode every reader shares one local T-Cache attached to
	// the fleet; otherwise each reader speaks the thin transactional
	// protocol to the single tcached.
	var clusterCache *tcache.ClusterCache
	if len(clusterAddrs) > 0 {
		var err error
		clusterCache, err = tcache.DialCluster(ctx, clusterAddrs)
		if err != nil {
			return fmt.Errorf("dial cluster: %w", err)
		}
		defer clusterCache.Close()
		fmt.Printf("routing reads over %d-node cluster tier\n", len(clusterAddrs))
	}

	for r := 0; r < *readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + 1000 + int64(r)))
			runTxn := func(keys []kv.Key) error {
				return clusterCache.ReadTxn(ctx, func(tx *tcache.ReadTx) error {
					_, err := tx.GetMulti(ctx, keys...)
					return err
				})
			}
			if clusterCache == nil {
				cli, err := transport.DialCache(ctx, *cacheAddr)
				if err != nil {
					fmt.Fprintln(os.Stderr, "dial cache:", err)
					return
				}
				defer cli.Close()
				runTxn = func(keys []kv.Key) error {
					// One round trip per transaction (OpReadMulti).
					_, err := cli.ReadMulti(ctx, cli.NewTxnID(), keys, true)
					return err
				}
			}
			for time.Now().Before(stop) {
				keys := gen.Pick(rng)
				t0 := time.Now()
				aborted := false
				if err := runTxn(keys); err != nil {
					if !errors.Is(err, transport.ErrAborted) && !errors.Is(err, tcache.ErrTxnAborted) {
						fmt.Fprintln(os.Stderr, "read:", err)
						return
					}
					aborted = true
				}
				c.mu.Lock()
				if aborted {
					c.aborts++
				} else {
					c.commits++
				}
				c.readLat.Add(float64(time.Since(t0).Microseconds()))
				c.mu.Unlock()
			}
		}()
	}
	wg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	secs := duration.Seconds()
	fmt.Printf("\n--- %v of load ---\n", *duration)
	fmt.Printf("update txns:     %8d (%.0f/s), latency[us] %s\n",
		c.updates, float64(c.updates)/secs, c.updateLat.String())
	fmt.Printf("read txns:       %8d (%.0f/s), latency[us] %s\n",
		c.commits+c.aborts, float64(c.commits+c.aborts)/secs, c.readLat.String())
	fmt.Printf("aborted (stale): %8d (%.2f%%)\n",
		c.aborts, 100*float64(c.aborts)/float64(max(1, c.commits+c.aborts)))

	if clusterCache != nil {
		st := clusterCache.Stats(ctx)
		local := st.Local
		if local.Reads > 0 {
			fmt.Printf("local cache hit ratio: %.3f (detected %d, retries %d, floor refetches %d)\n",
				local.HitRatio(), local.Detected, local.Retries, local.FloorRefetches)
		}
		for _, ns := range st.Nodes {
			hits, misses := ns.Stats["hits"], ns.Stats["misses"]
			ratio := 0.0
			if hits+misses > 0 {
				ratio = float64(hits) / float64(hits+misses)
			}
			fmt.Printf("node %-22s [%s] hit ratio %.3f (reads %d, floor refetches %d)\n",
				ns.Addr, ns.State, ratio, ns.Stats["reads"], ns.Stats["floor_refetches"])
		}
		return nil
	}
	cli, err := transport.DialCache(ctx, *cacheAddr)
	if err == nil {
		defer cli.Close()
		if s, err := cli.Stats(ctx); err == nil {
			hits, misses := s["hits"], s["misses"]
			if hits+misses > 0 {
				fmt.Printf("cache hit ratio: %.3f (detected %d, retries %d)\n",
					float64(hits)/float64(hits+misses), s["detected"], s["retries"])
			}
		}
	}
	return nil
}

func dedup(keys []kv.Key) []kv.Key {
	seen := make(map[kv.Key]struct{}, len(keys))
	out := keys[:0:len(keys)]
	for _, k := range keys {
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, k)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
