// Command tcache-load drives a live tdbd + tcached deployment with the
// paper's §IV workload shape (clustered 5-object transactions, a given
// update/read mix) and reports throughput, abort rate, and latency
// percentiles. It is the real-time counterpart of the simulation harness:
// use it to measure an actual deployment on real hardware.
//
// Usage:
//
//	tcache-load -db 127.0.0.1:7070 -cache 127.0.0.1:7071 \
//	            -duration 10s -readers 8 -updaters 2 -objects 2000
//
// With -cluster, readers attach one local T-Cache to a whole fleet of
// tcached nodes through the consistent-hash routing tier, and updates
// commit through the same tier (relayed by an edge node to the
// database):
//
//	tcache-load -db 127.0.0.1:7070 -cluster edge1:7071,edge2:7071,edge3:7071
//
// All writes go through the unified tcache.Updater API — read-modify-
// write closures validated and committed in one round trip, conflicts
// retried with jittered backoff. -write-mix additionally turns the given
// fraction of every reader's transactions into such closures, modelling
// edge clients that both read and write:
//
//	tcache-load -cluster edge1:7071,edge2:7071 -write-mix 0.1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"tcache"
	"tcache/internal/cluster"
	"tcache/internal/kv"
	"tcache/internal/stats"
	"tcache/internal/transport"
	"tcache/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tcache-load:", err)
		os.Exit(1)
	}
}

type counters struct {
	mu        sync.Mutex
	updates   int
	commits   int
	aborts    int
	readLat   stats.Sample
	updateLat stats.Sample
}

// updateTxn runs one read-modify-write transaction over keys through the
// unified API: read every key, write every key.
func updateTxn(ctx context.Context, up tcache.Updater, keys []kv.Key, tag string) error {
	return up.Update(ctx, func(tx *tcache.Tx) error {
		for _, k := range keys {
			if _, _, err := tx.Get(ctx, k); err != nil {
				return err
			}
		}
		for _, k := range keys {
			if err := tx.Set(k, kv.Value(tag)); err != nil {
				return err
			}
		}
		return nil
	})
}

func run() error {
	ctx := context.Background()
	var (
		dbAddr      = flag.String("db", "127.0.0.1:7070", "tdbd address")
		cacheAddr   = flag.String("cache", "127.0.0.1:7071", "tcached address")
		clusterFl   = flag.String("cluster", "", "comma-separated tcached fleet; reads AND updates route through the cluster tier instead of -cache/-db")
		duration    = flag.Duration("duration", 10*time.Second, "load duration")
		readers     = flag.Int("readers", 8, "read-only client goroutines")
		updaters    = flag.Int("updaters", 2, "update client goroutines")
		writeMix    = flag.Float64("write-mix", 0, "fraction of each reader's transactions that are read-modify-write closures through the unified Update API (0..1)")
		objects     = flag.Int("objects", 2000, "object count")
		clusterSize = flag.Int("cluster-size", 5, "workload cluster size (objects per affinity cluster)")
		txnSize     = flag.Int("txn", 5, "objects per transaction")
		seed        = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	clusterAddrs := cluster.SplitAddrs(*clusterFl)

	// The datacenter-side handle: pings, seeding, and the updater used
	// when no cluster tier is configured.
	remote, err := tcache.Dial(ctx, *dbAddr, tcache.WithPoolSize(*updaters+1))
	if err != nil {
		return err
	}
	defer remote.Close()
	if err := remote.Ping(ctx); err != nil {
		return fmt.Errorf("tdbd unreachable: %w", err)
	}

	// Seed the key space through the unified API, chunked so each commit
	// is one round trip instead of one per object.
	gen := &workload.PerfectClusters{Objects: *objects, ClusterSize: *clusterSize, TxnSize: *txnSize}
	fmt.Printf("seeding %d objects...\n", *objects)
	all := workload.AllObjectKeys(*objects)
	const seedChunk = 100
	for start := 0; start < len(all); start += seedChunk {
		chunk := all[start:min(start+seedChunk, len(all))]
		if err := remote.Update(ctx, func(tx *tcache.Tx) error {
			for _, k := range chunk {
				if err := tx.Set(k, kv.Value("seed")); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return fmt.Errorf("seed chunk at %d: %w", start, err)
		}
	}

	// In cluster mode every reader shares one local T-Cache attached to
	// the fleet, and updates commit through the same tier (an edge node
	// relays them to the database); otherwise readers speak the thin
	// transactional protocol to the single tcached and updates go
	// straight to the database.
	var clusterCache *tcache.ClusterCache
	var updater tcache.Updater = remote
	if len(clusterAddrs) > 0 {
		clusterCache, err = tcache.DialCluster(ctx, clusterAddrs)
		if err != nil {
			return fmt.Errorf("dial cluster: %w", err)
		}
		defer clusterCache.Close()
		updater = clusterCache
		fmt.Printf("routing reads and updates over %d-node cluster tier\n", len(clusterAddrs))
	}

	var (
		c    counters
		wg   sync.WaitGroup
		stop = time.Now().Add(*duration)
	)
	// Workers share a deadline so conflict-retry loops cannot overrun the
	// measurement window.
	loadCtx, cancelLoad := context.WithDeadline(ctx, stop)
	defer cancelLoad()

	runUpdate := func(rng *rand.Rand, u int) bool {
		keys := dedup(gen.Pick(rng))
		t0 := time.Now()
		err := updateTxn(loadCtx, updater, keys, fmt.Sprintf("u%d-%d", u, rng.Int63()))
		if err != nil {
			if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "update:", err)
			}
			return false
		}
		c.mu.Lock()
		c.updates++
		c.updateLat.Add(float64(time.Since(t0).Microseconds()))
		c.mu.Unlock()
		return true
	}

	for u := 0; u < *updaters; u++ {
		u := u
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(u)))
			for time.Now().Before(stop) {
				if !runUpdate(rng, u) {
					return
				}
			}
		}()
	}

	for r := 0; r < *readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + 1000 + int64(r)))
			runTxn := func(keys []kv.Key) error {
				return clusterCache.ReadTxn(loadCtx, func(tx *tcache.ReadTx) error {
					_, err := tx.GetMulti(loadCtx, keys...)
					return err
				})
			}
			if clusterCache == nil {
				cli, err := transport.DialCache(ctx, *cacheAddr)
				if err != nil {
					fmt.Fprintln(os.Stderr, "dial cache:", err)
					return
				}
				defer cli.Close()
				runTxn = func(keys []kv.Key) error {
					// One round trip per transaction (OpReadMulti).
					_, err := cli.ReadMulti(loadCtx, cli.NewTxnID(), keys, true)
					return err
				}
			}
			for time.Now().Before(stop) {
				if *writeMix > 0 && rng.Float64() < *writeMix {
					// This transaction writes: a read-modify-write closure
					// through the same tier the reads use.
					if !runUpdate(rng, 1000+r) {
						return
					}
					continue
				}
				keys := gen.Pick(rng)
				t0 := time.Now()
				aborted := false
				if err := runTxn(keys); err != nil {
					if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
						return
					}
					if !errors.Is(err, transport.ErrAborted) && !errors.Is(err, tcache.ErrTxnAborted) {
						fmt.Fprintln(os.Stderr, "read:", err)
						return
					}
					aborted = true
				}
				c.mu.Lock()
				if aborted {
					c.aborts++
				} else {
					c.commits++
				}
				c.readLat.Add(float64(time.Since(t0).Microseconds()))
				c.mu.Unlock()
			}
		}()
	}
	wg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	secs := duration.Seconds()
	fmt.Printf("\n--- %v of load ---\n", *duration)
	fmt.Printf("update txns:     %8d (%.0f/s), latency[us] %s\n",
		c.updates, float64(c.updates)/secs, c.updateLat.String())
	fmt.Printf("read txns:       %8d (%.0f/s), latency[us] %s\n",
		c.commits+c.aborts, float64(c.commits+c.aborts)/secs, c.readLat.String())
	fmt.Printf("aborted (stale): %8d (%.2f%%)\n",
		c.aborts, 100*float64(c.aborts)/float64(max(1, c.commits+c.aborts)))

	if clusterCache != nil {
		st := clusterCache.Stats(ctx)
		local := st.Local
		if local.Reads > 0 {
			fmt.Printf("local cache hit ratio: %.3f (detected %d, retries %d, floor refetches %d)\n",
				local.HitRatio(), local.Detected, local.Retries, local.FloorRefetches)
		}
		for _, ns := range st.Nodes {
			hits, misses := ns.Stats["hits"], ns.Stats["misses"]
			ratio := 0.0
			if hits+misses > 0 {
				ratio = float64(hits) / float64(hits+misses)
			}
			fmt.Printf("node %-22s [%s] hit ratio %.3f (reads %d, floor refetches %d)\n",
				ns.Addr, ns.State, ratio, ns.Stats["reads"], ns.Stats["floor_refetches"])
		}
		return nil
	}
	cli, err := transport.DialCache(ctx, *cacheAddr)
	if err == nil {
		defer cli.Close()
		if s, err := cli.Stats(ctx); err == nil {
			hits, misses := s["hits"], s["misses"]
			if hits+misses > 0 {
				fmt.Printf("cache hit ratio: %.3f (detected %d, retries %d)\n",
					float64(hits)/float64(hits+misses), s["detected"], s["retries"])
			}
		}
	}
	return nil
}

func dedup(keys []kv.Key) []kv.Key {
	seen := make(map[kv.Key]struct{}, len(keys))
	out := keys[:0:len(keys)]
	for _, k := range keys {
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, k)
	}
	return out
}
