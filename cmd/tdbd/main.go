// Command tdbd runs the backend transactional database as a TCP daemon.
//
// Usage:
//
//	tdbd [-listen 127.0.0.1:7070] [-shards 4] [-dep-bound 5]
//
// Clients are cmd/tcached (edge caches that fill misses from this server
// and subscribe to its invalidation stream) and cmd/tcache-cli.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"tcache/internal/db"
	"tcache/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tdbd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen   = flag.String("listen", "127.0.0.1:7070", "address to listen on")
		shards   = flag.Int("shards", 1, "number of two-phase-commit shards")
		depBound = flag.Int("dep-bound", 5, "dependency-list length k per object (0 disables, -1 unbounded)")
	)
	flag.Parse()

	d := db.Open(db.Config{Shards: *shards, DepBound: *depBound})
	defer d.Close()

	srv := transport.NewDBServer(d, log.Printf)
	addr, err := srv.Listen(*listen)
	if err != nil {
		return err
	}
	defer srv.Close()
	log.Printf("tdbd: serving on %s (shards=%d, dep-bound=%d)", addr, *shards, *depBound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("tdbd: shutting down")
	return nil
}
