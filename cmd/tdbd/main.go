// Command tdbd runs the backend transactional database as a TCP daemon.
//
// Usage:
//
//	tdbd [-listen 127.0.0.1:7070] [-shards 4] [-dep-bound 5]
//	     [-wal-dir /var/lib/tdbd/wal] [-wal-sync=true]
//	     [-snapshot-every 10000] [-wal-segment-size 67108864]
//	     [-metrics-addr 127.0.0.1:9070]
//
// With -metrics-addr an admin HTTP listener serves /metrics (Prometheus
// text exposition: transaction counters, commit and WAL-fsync latency
// histograms, replication lag), role-aware /healthz (a standby answers
// 200 and says so; a sticky WAL error turns it 503), and /debug/pprof.
//
// Without -wal-dir the database is purely in-memory. With it, commits
// are written to a segmented write-ahead log before being applied, and
// a restart pointed at the same directory recovers every acknowledged
// transaction — values, versions, and dependency lists — so the edge
// floors (eq. 1/eq. 2) stay monotone across crashes.
//
// Clients are cmd/tcached (edge caches that fill misses from this server
// and subscribe to its invalidation stream) and cmd/tcache-cli.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tcache/internal/db"
	"tcache/internal/telemetry"
	"tcache/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tdbd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:7070", "address to listen on")
		shards    = flag.Int("shards", 1, "number of two-phase-commit shards")
		depBound  = flag.Int("dep-bound", 5, "dependency-list length k per object (0 disables, -1 unbounded)")
		walDir    = flag.String("wal-dir", "", "write-ahead-log directory; empty = in-memory only")
		walSync   = flag.Bool("wal-sync", true, "fsync commit batches before acknowledging (requires -wal-dir)")
		snapEvery = flag.Int("snapshot-every", 10000, "background snapshot after this many commits, 0 = never (requires -wal-dir)")
		segSize   = flag.Int64("wal-segment-size", 0, "log segment rotation threshold in bytes, 0 = default 64 MiB")

		metricsAddr = flag.String("metrics-addr", "", "admin HTTP listener for /metrics, /healthz, /debug/pprof (empty = disabled)")

		nodeID       = flag.Uint("node-id", 0, "version namespace of this node's commits (give each replica its own)")
		replicaOf    = flag.String("replica-of", "", "run as a warm standby replicating from the primary at this address")
		advertise    = flag.String("advertise", "", "replica identity registered with the primary (default: the bound listen address)")
		replMinSync  = flag.Int("repl-min-sync", 0, "primary: each commit waits for this many standby acks (0 = asynchronous replication)")
		autoPromote  = flag.Bool("auto-promote", false, "standby: promote automatically once the primary has been unreachable for -promote-after")
		promoteAfter = flag.Duration("promote-after", 3*time.Second, "standby: unreachability window before auto-promotion")
	)
	flag.Parse()

	cfg := db.Config{Shards: *shards, DepBound: *depBound, NodeID: uint32(*nodeID), ReplMinSync: *replMinSync}
	var d *db.DB
	if *walDir != "" {
		cfg.WALSync = *walSync
		cfg.WALSegmentSize = *segSize
		cfg.SnapshotEvery = *snapEvery
		var err error
		d, err = db.Recover(cfg, *walDir)
		if err != nil {
			return err
		}
		info := d.Recovery()
		log.Printf("tdbd: recovered %s: %d snapshot entries + %d records over %d segments (counter=%d, torn tail %d bytes)",
			*walDir, info.SnapshotEntries, info.Records, info.Segments, info.Counter, info.TornBytes)
	} else {
		d = db.Open(cfg)
	}

	// The role must be set before the first request is accepted: a write
	// that lands in the gap would mint a version the primary never saw.
	if *replicaOf != "" {
		d.SetStandby(*replicaOf)
	}

	srv := transport.NewDBServer(d, log.Printf)
	// One registry for both surfaces: OpStats over the wire (flat
	// encoding, a superset of the legacy counter map) and the admin
	// listener's /metrics.
	reg := telemetry.NewRegistry()
	d.RegisterMetrics(reg)
	srv.RegisterMetrics(reg)
	srv.SetRegistry(reg)

	addr, err := srv.Listen(*listen)
	if err != nil {
		_ = d.Close()
		return err
	}

	if *metricsAddr != "" {
		mbound, mstop, merr := telemetry.ServeAdmin(*metricsAddr, reg, func() telemetry.Health {
			h := telemetry.Health{Healthy: true, Role: d.Role().String()}
			if st := d.ReplStatusNow(); st.Role == db.RoleStandby && st.Leader != "" {
				h.Detail = "leader=" + st.Leader
			}
			if err := d.Health(); err != nil {
				h.Healthy = false
				h.Detail = err.Error()
			}
			return h
		})
		if merr != nil {
			srv.Close()
			_ = d.Close()
			return merr
		}
		defer mstop()
		log.Printf("tdbd: metrics on http://%s/metrics", mbound)
	}
	log.Printf("tdbd: serving on %s (shards=%d, dep-bound=%d, wal=%q sync=%v, role=%s)",
		addr, *shards, *depBound, *walDir, *walSync, d.Role())

	sctx, stopStandby := context.WithCancel(context.Background())
	standbyDone := make(chan struct{})
	close(standbyDone)
	if *replicaOf != "" {
		name := *advertise
		if name == "" {
			name = addr
		}
		log.Printf("tdbd: standby of %s (replica identity %q, auto-promote=%v after %s)",
			*replicaOf, name, *autoPromote, *promoteAfter)
		standbyDone = make(chan struct{})
		go func() {
			defer close(standbyDone)
			transport.RunStandby(sctx, d, transport.StandbyConfig{
				Primary:      *replicaOf,
				Name:         name,
				AutoPromote:  *autoPromote,
				PromoteAfter: *promoteAfter,
				Logf:         log.Printf,
			})
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("tdbd: shutting down")
	stopStandby()
	<-standbyDone
	srv.Close()
	// A Close error means acknowledged commits may not have reached
	// disk; exit non-zero so supervisors notice.
	if err := d.Close(); err != nil {
		return fmt.Errorf("close database: %w", err)
	}
	return nil
}
