// Command tdbd runs the backend transactional database as a TCP daemon.
//
// Usage:
//
//	tdbd [-listen 127.0.0.1:7070] [-shards 4] [-dep-bound 5]
//	     [-wal-dir /var/lib/tdbd/wal] [-wal-sync=true]
//	     [-snapshot-every 10000] [-wal-segment-size 67108864]
//
// Without -wal-dir the database is purely in-memory. With it, commits
// are written to a segmented write-ahead log before being applied, and
// a restart pointed at the same directory recovers every acknowledged
// transaction — values, versions, and dependency lists — so the edge
// floors (eq. 1/eq. 2) stay monotone across crashes.
//
// Clients are cmd/tcached (edge caches that fill misses from this server
// and subscribe to its invalidation stream) and cmd/tcache-cli.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"tcache/internal/db"
	"tcache/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tdbd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:7070", "address to listen on")
		shards    = flag.Int("shards", 1, "number of two-phase-commit shards")
		depBound  = flag.Int("dep-bound", 5, "dependency-list length k per object (0 disables, -1 unbounded)")
		walDir    = flag.String("wal-dir", "", "write-ahead-log directory; empty = in-memory only")
		walSync   = flag.Bool("wal-sync", true, "fsync commit batches before acknowledging (requires -wal-dir)")
		snapEvery = flag.Int("snapshot-every", 10000, "background snapshot after this many commits, 0 = never (requires -wal-dir)")
		segSize   = flag.Int64("wal-segment-size", 0, "log segment rotation threshold in bytes, 0 = default 64 MiB")
	)
	flag.Parse()

	cfg := db.Config{Shards: *shards, DepBound: *depBound}
	var d *db.DB
	if *walDir != "" {
		cfg.WALSync = *walSync
		cfg.WALSegmentSize = *segSize
		cfg.SnapshotEvery = *snapEvery
		var err error
		d, err = db.Recover(cfg, *walDir)
		if err != nil {
			return err
		}
		info := d.Recovery()
		log.Printf("tdbd: recovered %s: %d snapshot entries + %d records over %d segments (counter=%d, torn tail %d bytes)",
			*walDir, info.SnapshotEntries, info.Records, info.Segments, info.Counter, info.TornBytes)
	} else {
		d = db.Open(cfg)
	}

	srv := transport.NewDBServer(d, log.Printf)
	addr, err := srv.Listen(*listen)
	if err != nil {
		_ = d.Close()
		return err
	}
	log.Printf("tdbd: serving on %s (shards=%d, dep-bound=%d, wal=%q sync=%v)",
		addr, *shards, *depBound, *walDir, *walSync)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("tdbd: shutting down")
	srv.Close()
	// A Close error means acknowledged commits may not have reached
	// disk; exit non-zero so supervisors notice.
	if err := d.Close(); err != nil {
		return fmt.Errorf("close database: %w", err)
	}
	return nil
}
