// Command tcached runs a T-Cache edge server as a TCP daemon: it fills
// misses from a tdbd backend, subscribes to its invalidation stream, and
// offers clients the transactional read interface of §III-B.
//
// Usage:
//
//	tcached [-listen 127.0.0.1:7071] [-db 127.0.0.1:7070] \
//	        [-strategy retry|evict|abort] [-ttl 0] [-shards 0] \
//	        [-max-bytes 0] [-evict lru|clock|cost] [-admission] \
//	        [-metrics-addr 127.0.0.1:9071]
//
// With -metrics-addr an admin HTTP listener serves /metrics (hit/miss
// counters, warm/cold read latency histograms, relay and conn-pool
// gauges), /healthz (role=edge), and /debug/pprof. The same registry is
// served over the wire protocol's OpStats, so tcache-cli stats and top
// see it too.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tcache/internal/core"
	"tcache/internal/evict"
	"tcache/internal/telemetry"
	"tcache/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tcached:", err)
		os.Exit(1)
	}
}

//tcache:metric
func run() error {
	var (
		listen   = flag.String("listen", "127.0.0.1:7071", "address to listen on")
		dbAddr   = flag.String("db", "127.0.0.1:7070", "tdbd backend address")
		strategy = flag.String("strategy", "retry", "inconsistency strategy: abort, evict, or retry")
		ttl      = flag.Duration("ttl", 0, "cache entry TTL (0 = none)")
		capacity = flag.Int("capacity", 0, "max cached entries (deprecated: use -max-bytes; 0 = unbounded)")
		shards   = flag.Int("shards", 0, "cache lock stripes (0 = GOMAXPROCS; 1 = single mutex)")
		maxBytes = flag.Int64("max-bytes", 0, "cache memory budget in bytes, keys+values+overhead (0 = unbounded)")
		policy   = flag.String("evict", "lru", "eviction policy under -max-bytes: lru, clock, or cost")
		admit    = flag.Bool("admission", false, "enable doorkeeper admission control (bounded caches only)")
		txnGC    = flag.Duration("txn-gc", time.Minute, "idle transaction record GC interval (0 = none)")
		name     = flag.String("name", "", "subscriber name reported to the backend")
		pool     = flag.Int("backend-conns", 4, "backend connection pool size")

		metricsAddr = flag.String("metrics-addr", "", "admin HTTP listener for /metrics, /healthz, /debug/pprof (empty = disabled)")
	)
	flag.Parse()

	strat, err := parseStrategy(*strategy)
	if err != nil {
		return err
	}
	kind, err := evict.ParseKind(*policy)
	if err != nil {
		return err
	}

	backend, err := transport.DialDB(context.Background(), *dbAddr, *pool)
	if err != nil {
		return err
	}
	defer backend.Close()

	cache, err := core.New(core.Config{
		Backend:   backend,
		Strategy:  strat,
		TTL:       *ttl,
		Capacity:  *capacity,
		MaxBytes:  *maxBytes,
		Policy:    kind,
		Admission: *admit,
		TxnGC:     *txnGC,
		Shards:    *shards,
		// The daemon always times its read paths: the scrape surface is
		// the point of running it, and the instrumented warm hit stays
		// allocation-free (gated by tcache-bench -fig telemetry).
		Telemetry: core.NewTelemetry(),
	})
	if err != nil {
		return err
	}
	defer cache.Close()

	srv := transport.NewCacheServer(cache, log.Printf)
	reg := telemetry.NewRegistry()
	cache.RegisterMetrics(reg)
	srv.RegisterMetrics(reg)
	reg.Gauge("backend_pool_size", func() uint64 { return uint64(backend.PoolSize()) })
	reg.Gauge("backend_pool_live", func() uint64 { return uint64(backend.LiveConns()) })
	srv.SetRegistry(reg)

	subName := *name
	if subName == "" {
		subName = fmt.Sprintf("tcached-%d", os.Getpid())
	}
	// Apply upstream invalidations locally, then relay them to any
	// downstream subscribers (cluster clients that picked this node as
	// their invalidation home).
	stop, err := transport.SubscribeInvalidations(context.Background(), *dbAddr, subName, func(inv transport.Invalidation) {
		cache.Invalidate(inv.Key, inv.Version)
		srv.Broadcast(inv)
	})
	if err != nil {
		return fmt.Errorf("subscribe to %s: %w", *dbAddr, err)
	}
	defer stop()

	addr, err := srv.Listen(*listen)
	if err != nil {
		return err
	}
	defer srv.Close()
	if *maxBytes > 0 {
		log.Printf("tcached: serving on %s (backend=%s, strategy=%s, ttl=%v, shards=%d, budget=%dB policy=%s)",
			addr, *dbAddr, strat, *ttl, cache.Shards(), *maxBytes, kind)
	} else {
		log.Printf("tcached: serving on %s (backend=%s, strategy=%s, ttl=%v, shards=%d)",
			addr, *dbAddr, strat, *ttl, cache.Shards())
	}

	if *metricsAddr != "" {
		mbound, mstop, merr := telemetry.ServeAdmin(*metricsAddr, reg, func() telemetry.Health {
			return telemetry.Health{Healthy: true, Role: "edge"}
		})
		if merr != nil {
			return merr
		}
		defer mstop()
		log.Printf("tcached: metrics on http://%s/metrics", mbound)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("tcached: shutting down")
	return nil
}

func parseStrategy(s string) (core.Strategy, error) {
	switch s {
	case "abort":
		return core.StrategyAbort, nil
	case "evict":
		return core.StrategyEvict, nil
	case "retry":
		return core.StrategyRetry, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (want abort, evict, or retry)", s)
	}
}
