GO ?= go

.PHONY: all build test race vet bench benchcluster benchwrite benchsmoke clustersmoke fuzz

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench regenerates BENCH_pr3.json — ns/op, B/op, allocs/op for the
# remote (loopback wire) and hit-path benchmarks — and enforces the
# checked-in allocs/op budget (bench_budget.json). CI uploads the JSON
# as an artifact and fails on budget regressions.
bench:
	$(GO) run ./cmd/tcache-bench -benchjson BENCH_pr3.json -bench-budget bench_budget.json

# benchcluster regenerates BENCH_pr4.json — the cluster tier's routing
# overhead vs plain Dial (warm + cold single-key, batch split, ring
# lookup) — and gates the zero-extra-allocs warm path.
benchcluster:
	$(GO) run ./cmd/tcache-bench -fig cluster

# benchwrite regenerates BENCH_pr5.json — the unified write path's cost
# per tier (in-process, remote validated round trip, cache with
# self-invalidation) — and gates allocs/op against the budget.
benchwrite:
	$(GO) run ./cmd/tcache-bench -fig writepath

# clustersmoke runs the end-to-end fleet check: 1 tdbd + 3 tcached on
# loopback, driven by tcache-load -cluster (with a -write-mix share
# committed through the edge relay) and tcache-cli.
clustersmoke:
	./scripts/cluster_smoke.sh

# benchsmoke is the CI quick pass: paper figures, hot paths, and the
# codec micro-benchmarks.
benchsmoke:
	$(GO) test -run '^$$' -bench 'Fig|Headline|Cache|Remote' -benchtime 100ms .
	$(GO) test -run '^$$' -bench 'Codec|WireRoundTrip' -benchtime 100ms ./internal/transport

# fuzz gives the wire codec a short adversarial shake (decoders must
# never panic or over-allocate; accepted inputs must round-trip).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzCodecRoundTrip -fuzztime 30s ./internal/transport
