GO ?= go

.PHONY: all build test race vet lint bench benchcluster benchwrite benchdurable benchrepl benchtelemetry bencheviction benchsmoke clustersmoke walsmoke replsmoke telemetry-smoke fuzz

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint is the full static-analysis gate: go vet, staticcheck (when
# installed — CI always runs it via its pinned action), and tcachelint,
# the repo's own analyzer suite (see README "Static analysis").
# tcachelint is built from this module's working tree, so the analyzer
# version can never drift from the code it checks.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi
	$(GO) run ./cmd/tcachelint ./...

# The bench* targets each regenerate one checked-in benchmark JSON and
# enforce its allocs/op budget; CI uploads the files as artifacts and
# fails on regressions:
#   bench        BENCH_pr3.json  remote (loopback wire) + hit-path
#   benchcluster BENCH_pr4.json  cluster routing overhead vs plain Dial
#   benchwrite   BENCH_pr5.json  unified write path cost per tier
bench:
	$(GO) run ./cmd/tcache-bench -benchjson BENCH_pr3.json -bench-budget bench_budget.json

benchcluster:
	$(GO) run ./cmd/tcache-bench -fig cluster

benchwrite:
	$(GO) run ./cmd/tcache-bench -fig writepath

#   benchdurable BENCH_pr7.json  sync-commit throughput vs concurrent
#   writers; gates that group commit coalesces fsyncs (≤0.9/commit @16)
benchdurable:
	$(GO) run ./cmd/tcache-bench -fig durability

#   benchrepl    BENCH_pr8.json  commit cost with no/async/sync
#   replication plus the client-visible failover time; gates async
#   convergence, sync lag = 0, and failover under 5s
benchrepl:
	$(GO) run ./cmd/tcache-bench -fig replication

#   benchtelemetry BENCH_pr9.json  warm-hit cost with telemetry off vs
#   on; gates that the instrumented hit adds zero allocations
benchtelemetry:
	$(GO) run ./cmd/tcache-bench -fig telemetry

#   bencheviction BENCH_pr10.json  byte-budgeted cache: per-policy hit
#   ratio under zipfian pressure, the bounded-warm-hit zero-extra-alloc
#   gate, and 1-vs-8-stripe scaling of the bounded touch path
bencheviction:
	$(GO) run ./cmd/tcache-bench -fig eviction

# clustersmoke runs the end-to-end fleet check: 1 tdbd + 3 tcached on
# loopback, driven by tcache-load -cluster (with a -write-mix share
# committed through the edge relay) and tcache-cli. The tdbd runs with
# a WAL and is kill -9'd and restarted mid-smoke: committed state and
# version floors must survive.
clustersmoke:
	./scripts/cluster_smoke.sh

# replsmoke is the replication gate: the WAL tailer and replication
# stream race-clean (end-to-end streaming, restart resync, 20%-loss
# chaos), the SIGKILL-the-primary promotion torture, client failover
# through tcache.Dial, and router failover through a chaos link.
replsmoke:
	$(GO) test -race -count=1 -run 'Tailer|Repl|Standby|Failover' ./internal/wal ./internal/transport
	$(GO) test -race -count=1 -run 'Dial|Probation|RouterFailover' . ./internal/cluster

# telemetry-smoke is the observability gate: the telemetry package
# race-clean (histogram hammer, registry, Prometheus golden file,
# admin listener), the end-to-end metric-surface tests (live /metrics
# scrapes on both daemons, WithTelemetry hooks, cluster stats
# breakdown), then the warm-hit overhead gate.
telemetry-smoke:
	$(GO) test -race -count=1 ./internal/telemetry
	$(GO) test -race -count=1 -run 'ServeMetrics|WithTelemetry|ClusterStatsReports' .
	$(GO) run ./cmd/tcache-bench -fig telemetry

# walsmoke is the durability gate: the WAL package race-clean (torture
# replays, crash windows, group commit), the db-level recovery +
# process-SIGKILL torture, and a short replay fuzz shake.
walsmoke:
	$(GO) test -race -count=1 ./internal/wal
	$(GO) test -race -count=1 -run 'Recover|Snapshot|Crash|Close|Compact|ConcurrentCommits|Background' ./internal/db
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime 15s ./internal/wal

# benchsmoke is the CI quick pass: paper figures, hot paths, the codec
# micro-benchmarks, and the PR 5 unified write-path benches.
benchsmoke:
	$(GO) test -run '^$$' -bench 'Fig|Headline|Cache|Remote' -benchtime 100ms .
	$(GO) test -run '^$$' -bench 'Codec|WireRoundTrip' -benchtime 100ms ./internal/transport
	$(GO) run ./cmd/tcache-bench -fig writepath -quick

# fuzz gives the wire codec and the WAL replay path a short adversarial
# shake (decoders must never panic or over-allocate; accepted inputs
# must round-trip; recovery must stay stable on hostile segments).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzCodecRoundTrip -fuzztime 30s ./internal/transport
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime 30s ./internal/wal
