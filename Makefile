GO ?= go

.PHONY: all build test race vet bench benchsmoke fuzz

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench regenerates BENCH_pr3.json — ns/op, B/op, allocs/op for the
# remote (loopback wire) and hit-path benchmarks — and enforces the
# checked-in allocs/op budget (bench_budget.json). CI uploads the JSON
# as an artifact and fails on budget regressions.
bench:
	$(GO) run ./cmd/tcache-bench -benchjson BENCH_pr3.json -bench-budget bench_budget.json

# benchsmoke is the CI quick pass: paper figures, hot paths, and the
# codec micro-benchmarks.
benchsmoke:
	$(GO) test -run '^$$' -bench 'Fig|Headline|Cache|Remote' -benchtime 100ms .
	$(GO) test -run '^$$' -bench 'Codec|WireRoundTrip' -benchtime 100ms ./internal/transport

# fuzz gives the wire codec a short adversarial shake (decoders must
# never panic or over-allocate; accepted inputs must round-trip).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzCodecRoundTrip -fuzztime 30s ./internal/transport
