// Benchmarks regenerating every table and figure of the paper's §V on
// scaled-down parameters (run cmd/tcache-bench for paper-scale output),
// plus micro-benchmarks of the protocol's hot paths. Figure benchmarks
// report their headline quantity with b.ReportMetric, so `go test
// -bench=.` doubles as a smoke reproduction of the evaluation.
package tcache

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"tcache/internal/core"
	"tcache/internal/db"
	"tcache/internal/experiment"
	"tcache/internal/kv"
	"tcache/internal/monitor"
	"tcache/internal/workload"
)

// BenchmarkFig3AlphaSweep regenerates Fig. 3 (detection vs Pareto α) and
// reports the detection ratio at the most clustered point.
func BenchmarkFig3AlphaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunAlphaSweep(context.Background(), experiment.QuickAlphaParams())
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.Detection, "detect@a4_%")
	}
}

// BenchmarkFig4Convergence regenerates Fig. 4 (cluster formation) and
// reports the post-switch inconsistent share.
func BenchmarkFig4Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunConvergence(context.Background(), experiment.QuickConvergenceParams())
		if err != nil {
			b.Fatal(err)
		}
		_, post, _ := res.WindowShares(res.SwitchBucket+2, res.Series.Buckets())
		b.ReportMetric(post, "postInconsist_%")
	}
}

// BenchmarkFig5Drift regenerates Fig. 5 (drifting clusters) and reports
// the number of cluster shifts simulated.
func BenchmarkFig5Drift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunDrift(context.Background(), experiment.QuickDriftParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Shifts)), "shifts")
	}
}

// BenchmarkFig6Strategies regenerates Fig. 6 (ABORT/EVICT/RETRY on the
// synthetic workload) and reports RETRY's uncommittable share relative
// to ABORT's (the paper's ~23%).
func BenchmarkFig6Strategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunStrategyComparison(context.Background(), experiment.QuickStrategyParams())
		if err != nil {
			b.Fatal(err)
		}
		abort, _ := res.Row(core.StrategyAbort)
		retry, _ := res.Row(core.StrategyRetry)
		if abort.Uncommittable() > 0 {
			b.ReportMetric(100*retry.Uncommittable()/abort.Uncommittable(), "retryVsAbort_%")
		}
	}
}

// BenchmarkFig7abTopologies regenerates the Fig. 7(a,b) topology
// construction and reports the clustering-coefficient gap.
func BenchmarkFig7abTopologies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ts, err := experiment.DescribeTopologies(experiment.QuickTopologyParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ts[0].Clustering-ts[1].Clustering, "ccGap")
	}
}

// BenchmarkFig7cDepListSweep regenerates Fig. 7(c) and reports the
// Amazon-workload inconsistency remaining at the largest bound, as a
// percentage of the k=0 value.
func BenchmarkFig7cDepListSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunDepListSweep(context.Background(), experiment.QuickDepSweepParams())
		if err != nil {
			b.Fatal(err)
		}
		s := res[0].Points
		if base := s[0].Inconsistency; base > 0 {
			b.ReportMetric(100*s[len(s)-1].Inconsistency/base, "remaining_%")
		}
	}
}

// BenchmarkFig7dTTLSweep regenerates Fig. 7(d) and reports the DB-load
// multiplier at the shortest TTL.
func BenchmarkFig7dTTLSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunTTLSweep(context.Background(), experiment.QuickTTLSweepParams())
		if err != nil {
			b.Fatal(err)
		}
		pts := res[0].Points
		b.ReportMetric(pts[len(pts)-1].DBAccessNormed, "dbLoad_%")
	}
}

// BenchmarkFig8StrategiesRealistic regenerates Fig. 8 and reports the
// ABORT detection ratio on the Amazon workload (the paper's 70%).
func BenchmarkFig8StrategiesRealistic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunStrategyComparisonRealistic(context.Background(), experiment.QuickRealisticStrategyParams())
		if err != nil {
			b.Fatal(err)
		}
		abort, _ := res.PerTopology[experiment.TopologyAmazon].Row(core.StrategyAbort)
		b.ReportMetric(abort.M.DetectionRatio(), "detect_%")
	}
}

// BenchmarkHeadline regenerates the §I/§VIII summary and reports the
// consistent-rate increase on the Amazon workload (the paper's 33–58%).
func BenchmarkHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunHeadline(context.Background(), experiment.QuickHeadlineParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].ConsistentRateIncrease, "rateGain_%")
	}
}

// --- Protocol micro-benchmarks ------------------------------------------

// bgb is the background context used by benchmark reads.
var bgb = context.Background()

// BenchmarkCacheHitRead measures the §III-B validated read on a warm
// cache (the latency-critical path: one client-to-cache round trip).
func BenchmarkCacheHitRead(b *testing.B) {
	d := db.Open(db.Config{DepBound: 5})
	defer d.Close()
	seedCluster(b, d, 5)
	cache, err := core.New(core.Config{Backend: d, Strategy: core.StrategyRetry})
	if err != nil {
		b.Fatal(err)
	}
	defer cache.Close()
	warm(b, cache, 5)

	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := kv.TxnID(i + 1)
		for r := 0; r < 5; r++ {
			if _, err := cache.Read(bgb, id, workload.ObjectKey(r), r == 4); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(5, "reads/txn")
}

// BenchmarkCachePlainGet measures the consistency-unaware hit path as a
// baseline for the transactional overhead.
func BenchmarkCachePlainGet(b *testing.B) {
	d := db.Open(db.Config{DepBound: 5})
	defer d.Close()
	seedCluster(b, d, 5)
	cache, err := core.New(core.Config{Backend: d})
	if err != nil {
		b.Fatal(err)
	}
	defer cache.Close()
	warm(b, cache, 5)

	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Get(bgb, workload.ObjectKey(i%5)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheHitReadParallel measures the validated read hot path under
// concurrent clients (b.RunParallel), the workload the lock-striped shards
// target: each transaction reads 5 warm keys, transactions run from many
// goroutines at once. Compare -cpu 1 vs -cpu N to see the scaling; the
// historical single-mutex cache degraded as cpus grew.
func BenchmarkCacheHitReadParallel(b *testing.B) {
	const nKeys = 64
	d := db.Open(db.Config{DepBound: 5})
	defer d.Close()
	seedCluster(b, d, nKeys)
	cache, err := core.New(core.Config{Backend: d, Strategy: core.StrategyRetry})
	if err != nil {
		b.Fatal(err)
	}
	defer cache.Close()
	warm(b, cache, nKeys)

	var nextID atomic.Uint64
	b.ResetTimer()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := nextID.Add(1)
			base := int(id*5) % nKeys
			for r := 0; r < 5; r++ {
				if _, err := cache.Read(bgb, kv.TxnID(id), workload.ObjectKey((base+r)%nKeys), r == 4); err != nil {
					b.Error(err)
					return
				}
			}
		}
	})
	b.ReportMetric(5, "reads/txn")
}

// BenchmarkCachePlainGetParallel measures the consistency-unaware hit path
// under concurrent clients, as the baseline for the transactional overhead
// of BenchmarkCacheHitReadParallel.
func BenchmarkCachePlainGetParallel(b *testing.B) {
	const nKeys = 64
	d := db.Open(db.Config{DepBound: 5})
	defer d.Close()
	seedCluster(b, d, nKeys)
	cache, err := core.New(core.Config{Backend: d})
	if err != nil {
		b.Fatal(err)
	}
	defer cache.Close()
	warm(b, cache, nKeys)

	var offset atomic.Uint64
	b.ResetTimer()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := int(offset.Add(17))
		for pb.Next() {
			i++
			if _, err := cache.Get(bgb, workload.ObjectKey(i%nKeys)); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkDBUpdateTxn measures a 5-object read-then-write update
// transaction through two-phase commit with dependency aggregation.
func BenchmarkDBUpdateTxn(b *testing.B) {
	d := db.Open(db.Config{DepBound: 5, Shards: 4})
	defer d.Close()
	seedCluster(b, d, 5)

	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		txn := d.Begin()
		for r := 0; r < 5; r++ {
			if _, _, err := txn.Read(workload.ObjectKey(r)); err != nil {
				b.Fatal(err)
			}
		}
		for r := 0; r < 5; r++ {
			if err := txn.Write(workload.ObjectKey(r), kv.Value("v")); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := txn.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergeDeps measures the commit-time dependency aggregation
// (§III-A), the database-side cost the paper bounds as O(k²).
func BenchmarkMergeDeps(b *testing.B) {
	accesses := make([]kv.Access, 5)
	for i := range accesses {
		deps := make(kv.DepList, 5)
		for j := range deps {
			deps[j] = kv.DepEntry{
				Key:     kv.Key(fmt.Sprintf("d%d-%d", i, j)),
				Version: kv.Version{Counter: uint64(10*i + j)},
			}
		}
		accesses[i] = kv.Access{
			Key:     workload.ObjectKey(i),
			Version: kv.Version{Counter: 100},
			Deps:    deps,
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := kv.MergeDeps(6, accesses); len(got) == 0 {
			b.Fatal("empty merge")
		}
	}
}

// BenchmarkMonitorClassify measures serialization-graph classification
// of one 5-read transaction against a 10k-version history.
func BenchmarkMonitorClassify(b *testing.B) {
	m := monitor.New()
	for v := uint64(1); v <= 10000; v++ {
		m.RecordUpdate(kv.Version{Counter: v}, []kv.Key{workload.ObjectKey(int(v) % 100)}, nil)
	}
	reads := []monitor.Read{
		{Key: workload.ObjectKey(0), Version: kv.Version{Counter: 9900}},
		{Key: workload.ObjectKey(1), Version: kv.Version{Counter: 9901}},
		{Key: workload.ObjectKey(2), Version: kv.Version{Counter: 9902}},
		{Key: workload.ObjectKey(3), Version: kv.Version{Counter: 9903}},
		{Key: workload.ObjectKey(4), Version: kv.Version{Counter: 9904}},
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Classify(reads)
	}
}

// BenchmarkDetectionUnderStaleness measures the validated-read path when
// violations actually fire (RETRY healing a stale entry).
func BenchmarkDetectionUnderStaleness(b *testing.B) {
	d := db.Open(db.Config{DepBound: 5})
	defer d.Close()
	seedCluster(b, d, 2)
	cache, err := core.New(core.Config{Backend: d, Strategy: core.StrategyRetry})
	if err != nil {
		b.Fatal(err)
	}
	defer cache.Close()

	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Cache b, update {a,b} without invalidation, then read a then b.
		if _, err := cache.Get(bgb, workload.ObjectKey(1)); err != nil {
			b.Fatal(err)
		}
		txn := d.Begin()
		for r := 0; r < 2; r++ {
			if _, _, err := txn.Read(workload.ObjectKey(r)); err != nil {
				b.Fatal(err)
			}
			if err := txn.Write(workload.ObjectKey(r), kv.Value("v")); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := txn.Commit(); err != nil {
			b.Fatal(err)
		}
		cache.Invalidate(workload.ObjectKey(0), kv.Version{Counter: ^uint64(0)}) // evict a only
		id := kv.TxnID(i + 1)
		if _, err := cache.Read(bgb, id, workload.ObjectKey(0), false); err != nil {
			b.Fatal(err)
		}
		if _, err := cache.Read(bgb, id, workload.ObjectKey(1), true); err != nil &&
			!errors.Is(err, core.ErrTxnAborted) {
			b.Fatal(err)
		}
	}
}

// --- Remote (loopback) benchmarks ---------------------------------------

// remoteBench builds the paper's deployment over loopback: a served DB,
// a Dial-attached Remote, and a T-Cache on top.
func remoteBench(b *testing.B, nKeys int) (*DB, *Cache) {
	b.Helper()
	ctx := context.Background()
	d := OpenDB(WithDepListBound(5))
	b.Cleanup(func() { d.Close() })
	addr, stop, err := ServeDB(d, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(stop)
	remote, err := Dial(ctx, addr)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(remote.Close)
	cache, err := NewCache(remote, WithStrategy(StrategyRetry))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cache.Close)
	if err := d.Update(ctx, func(tx *Tx) error {
		for i := 0; i < nKeys; i++ {
			if err := tx.Set(workload.ObjectKey(i), kv.Value("seed")); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	return d, cache
}

// BenchmarkRemoteReadTxn measures a 5-key read-only transaction against
// a Dial-attached remote backend with a warm cache: the edge hot path —
// hits are validated locally, no wire traffic.
func BenchmarkRemoteReadTxn(b *testing.B) {
	_, cache := remoteBench(b, 5)
	keys := make([]Key, 5)
	for i := range keys {
		keys[i] = workload.ObjectKey(i)
		if _, err := cache.Get(bgb, keys[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := cache.ReadTxn(bgb, func(tx *ReadTx) error {
			for _, k := range keys {
				if _, err := tx.Get(bgb, k); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(5, "reads/txn")
}

// BenchmarkRemoteReadTxnColdSingle measures the same transaction with an
// always-cold cache and per-key Gets: 5 wire round trips per txn.
func BenchmarkRemoteReadTxnColdSingle(b *testing.B) {
	_, cache := remoteBench(b, 5)
	keys := make([]Key, 5)
	for i := range keys {
		keys[i] = workload.ObjectKey(i)
	}
	evict := kv.Version{Counter: ^uint64(0) - 1}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, k := range keys {
			cache.Invalidate(k, evict)
		}
		if err := cache.ReadTxn(bgb, func(tx *ReadTx) error {
			for _, k := range keys {
				if _, err := tx.Get(bgb, k); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(5, "roundtrips/txn")
}

// BenchmarkRemoteReadTxnColdMulti is the batched counterpart: the same 5
// cold keys through GetMulti, one wire round trip per txn.
func BenchmarkRemoteReadTxnColdMulti(b *testing.B) {
	_, cache := remoteBench(b, 5)
	keys := make([]Key, 5)
	for i := range keys {
		keys[i] = workload.ObjectKey(i)
	}
	evict := kv.Version{Counter: ^uint64(0) - 1}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, k := range keys {
			cache.Invalidate(k, evict)
		}
		if err := cache.ReadTxn(bgb, func(tx *ReadTx) error {
			_, err := tx.GetMulti(bgb, keys...)
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1, "roundtrips/txn")
}

func seedCluster(b *testing.B, d *db.DB, n int) {
	b.Helper()
	txn := d.Begin()
	for i := 0; i < n; i++ {
		if err := txn.Write(workload.ObjectKey(i), kv.Value("seed")); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := txn.Commit(); err != nil {
		b.Fatal(err)
	}
}

func warm(b *testing.B, cache *core.Cache, n int) {
	b.Helper()
	for i := 0; i < n; i++ {
		if _, err := cache.Get(bgb, workload.ObjectKey(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtAlbumPinning regenerates the §VII web-album experiment and
// reports the detection gain of pinning over plain LRU.
func BenchmarkExtAlbumPinning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunAlbum(context.Background(), experiment.QuickAlbumParams())
		if err != nil {
			b.Fatal(err)
		}
		plain, _ := res.Row("lru-only")
		pinned, _ := res.Row("pinned-acl")
		b.ReportMetric(pinned.Detection-plain.Detection, "detectGain_pp")
	}
}

// BenchmarkExtLRUAblation regenerates the pruning-policy ablation and
// reports the positional policy's excess inconsistency.
func BenchmarkExtLRUAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunMergeAblation(context.Background(), experiment.QuickMergeAblationParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[1].MeanInconsistency-res.Rows[0].MeanInconsistency, "excess_pp")
	}
}

// BenchmarkExtDropSweep regenerates the loss-sensitivity ablation and
// reports T-Cache's committed inconsistency at 80% loss.
func BenchmarkExtDropSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunDropSweep(context.Background(), experiment.QuickDropSweepParams())
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.Inconsistency, "inconsist@80%loss_%")
	}
}

// BenchmarkExtMultiversion regenerates the §VI multiversion extension and
// reports the abort reduction of a 4-version cache over plain T-Cache.
func BenchmarkExtMultiversion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunMultiversion(context.Background(), experiment.QuickMultiversionParams())
		if err != nil {
			b.Fatal(err)
		}
		plain, _ := res.Row(experiment.TopologyAmazon, 1)
		mv, _ := res.Row(experiment.TopologyAmazon, 4)
		b.ReportMetric(plain.Aborted-mv.Aborted, "abortCut_pp")
	}
}

// BenchmarkMonitorClassifyExact measures exact conflict-graph
// classification on a version-torn read set (the path that cannot use
// the interval fast path) against a 10k-transaction history.
func BenchmarkMonitorClassifyExact(b *testing.B) {
	m := monitor.New()
	for v := uint64(1); v <= 10000; v++ {
		k := workload.ObjectKey(int(v) % 100)
		var reads []monitor.Read
		if v > 100 {
			reads = []monitor.Read{{Key: k, Version: kv.Version{Counter: v - 100}}}
		}
		m.RecordUpdate(kv.Version{Counter: v}, []kv.Key{k}, reads)
	}
	// Torn: an old version of one key with fresh versions of others.
	reads := []monitor.Read{
		{Key: workload.ObjectKey(0), Version: kv.Version{Counter: 9500}},
		{Key: workload.ObjectKey(1), Version: kv.Version{Counter: 9901}},
		{Key: workload.ObjectKey(2), Version: kv.Version{Counter: 9902}},
	}
	if m.Classify(reads) {
		b.Fatal("read set unexpectedly strict-consistent; benchmark would hit the fast path")
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.ClassifyExact(reads)
	}
}
