package tcache

import (
	"context"
	"fmt"
	"os"
	"time"

	"tcache/internal/cluster"
	"tcache/internal/core"
	"tcache/internal/db"
	"tcache/internal/telemetry"
	"tcache/internal/transport"
)

// ClusterCache is a T-Cache whose backend is a whole fleet of tcached
// nodes instead of one database: a consistent-hash ring routes every
// miss fill (and the invalidation subscription) to the node owning the
// key, batch reads are split into per-node sub-batches, and a dead node
// is ejected and routed around while health probes work to re-admit it.
//
// It embeds *Cache, so the read API — ReadTxn, Get, GetMulti — is
// exactly the single-backend one; the paper's per-edge eq.1/eq.2 checks
// run unchanged in this local cache. What the fleet adds is horizontal
// capacity and availability, plus a failover guarantee of its own: a
// read re-routed off a dead (or freshly re-admitted) node carries the
// high-water version mark of its key range, so a survivor whose cache
// fell behind this client's history refetches from the database instead
// of serving versions the client has already seen invalidated
// (read-your-invalidations across failover).
type ClusterCache struct {
	*Cache
	router *cluster.Router
}

// clusterOptions collects DialCluster settings.
type clusterOptions struct {
	router cluster.Config
	cache  []CacheOption
}

// ClusterOption configures DialCluster.
type ClusterOption func(*clusterOptions)

// WithClusterVNodes sets the virtual-node count per fleet member
// (default 128). More points smooth the member shares at slightly larger
// ring memory.
func WithClusterVNodes(n int) ClusterOption {
	return func(o *clusterOptions) { o.router.VNodes = n }
}

// WithClusterPoolSize sets the multiplexed connection count per node
// (default 2).
func WithClusterPoolSize(n int) ClusterOption {
	return func(o *clusterOptions) { o.router.PoolSize = n }
}

// WithClusterFailThreshold sets how many consecutive transport failures
// eject a node from routing (default 3).
func WithClusterFailThreshold(n int) ClusterOption {
	return func(o *clusterOptions) { o.router.FailThreshold = n }
}

// WithClusterHealth sets the background health-check period and the
// per-probe timeout (defaults 500ms, 1s).
func WithClusterHealth(interval, timeout time.Duration) ClusterOption {
	return func(o *clusterOptions) {
		o.router.ProbeInterval = interval
		o.router.ProbeTimeout = timeout
	}
}

// WithClusterProbation sets how long a re-admitted node keeps serving
// floored reads while it may still be missing invalidations from its
// absence (default 10s).
func WithClusterProbation(d time.Duration) ClusterOption {
	return func(o *clusterOptions) { o.router.Probation = d }
}

// WithClusterCacheOptions forwards options to the embedded local Cache
// (strategy, TTL, capacity, shards, ...).
func WithClusterCacheOptions(opts ...CacheOption) ClusterOption {
	return func(o *clusterOptions) { o.cache = append(o.cache, opts...) }
}

// DialCluster connects to a fleet of tcached nodes and returns a
// ClusterCache attached to it — the multi-edge form of Dial + NewCache:
//
//	cc, err := tcache.DialCluster(ctx, []string{"edge1:7071", "edge2:7071", "edge3:7071"})
//	defer cc.Close()
//	err = cc.ReadTxn(ctx, func(tx *tcache.ReadTx) error { ... })
//
// Nodes that are down at dial time start ejected and join when their
// health probe succeeds; DialCluster fails only when no node is
// reachable. ctx bounds the initial dials.
func DialCluster(ctx context.Context, addrs []string, opts ...ClusterOption) (*ClusterCache, error) {
	o := clusterOptions{}
	o.router.Addrs = addrs
	for _, opt := range opts {
		opt(&o)
	}
	router, err := cluster.NewRouter(ctx, o.router)
	if err != nil {
		return nil, err
	}
	cache, err := NewCache(&clusterBackend{r: router}, o.cache...)
	if err != nil {
		router.Close()
		return nil, err
	}
	return &ClusterCache{Cache: cache, router: router}, nil
}

// Close shuts the local cache down, then the fleet clients.
func (c *ClusterCache) Close() {
	c.Cache.Close()
	c.router.Close()
}

// ClusterNode is one fleet member's health, as the router sees it.
type ClusterNode struct {
	Addr string
	// State is "up", "probation" (re-admitted, still serving floored
	// reads), or "ejected" (routed around, being re-probed).
	State string
	// ConsecutiveFails is the current transport-failure streak.
	ConsecutiveFails int
}

// Nodes returns each fleet member's health, in DialCluster order.
func (c *ClusterCache) Nodes() []ClusterNode {
	infos := c.router.Nodes()
	out := make([]ClusterNode, len(infos))
	for i, ni := range infos {
		out[i] = ClusterNode{Addr: ni.Addr, State: string(ni.State), ConsecutiveFails: ni.ConsecutiveFails}
	}
	return out
}

// ClusterNodeStats is one node's health plus its server-side counters.
type ClusterNodeStats struct {
	ClusterNode
	// Stats are the node's counters (reads, hits, misses, ...); nil when
	// the node was unreachable.
	Stats map[string]uint64
	// Err is the stats-fetch failure, if any.
	Err string
}

// ClusterStats aggregates the whole tier's counters: the local cache's
// view plus every node's, summed and broken down.
type ClusterStats struct {
	// Local is the embedded cache's counters (what Cache.Stats alone
	// would report).
	Local Stats
	// Nodes is the per-node breakdown.
	Nodes []ClusterNodeStats
	// Aggregate sums each counter over all reachable nodes.
	Aggregate map[string]uint64
}

// Stats returns the aggregated cluster counters: unlike the embedded
// Cache.Stats (which it shadows), it sums every node's server-side
// counters and exposes the per-node breakdown alongside the local view.
// Ejected nodes appear in the breakdown with their health state and no
// counters. ctx bounds the per-node stats round trips.
func (c *ClusterCache) Stats(ctx context.Context) ClusterStats {
	nodeStats := c.router.Stats(ctx)
	out := ClusterStats{
		Local:     c.Cache.Stats(),
		Nodes:     make([]ClusterNodeStats, len(nodeStats)),
		Aggregate: make(map[string]uint64),
	}
	for i, ns := range nodeStats {
		out.Nodes[i] = ClusterNodeStats{
			ClusterNode: ClusterNode{Addr: ns.Addr, State: string(ns.State), ConsecutiveFails: ns.ConsecutiveFails},
			Stats:       ns.Stats,
			Err:         ns.Err,
		}
		for k, v := range ns.Stats {
			out.Aggregate[k] += v
		}
	}
	return out
}

// clusterBackend adapts the router to the Backend interface (it lives
// here rather than in the cluster package so that package stays free of
// the public API's db-typed Invalidation).
type clusterBackend struct {
	r *cluster.Router
}

var (
	_ Backend        = (*clusterBackend)(nil)
	_ BatchBackend   = (*clusterBackend)(nil)
	_ UpdaterBackend = (*clusterBackend)(nil)
)

func (b *clusterBackend) ReadItem(ctx context.Context, key Key) (Item, bool, error) {
	return b.r.ReadItem(ctx, key)
}

func (b *clusterBackend) ReadItems(ctx context.Context, keys []Key) ([]Lookup, error) {
	return b.r.ReadItems(ctx, keys)
}

// ValidatedUpdate relays an optimistic commit through a live edge node
// (which forwards it to the database) and raises the router's per-range
// write marks, so this client's subsequent reads on ANY node are floored
// at its own commit — the cluster half of read-your-writes. This is what
// makes ClusterCache.Update (inherited from the embedded Cache) work.
func (b *clusterBackend) ValidatedUpdate(ctx context.Context, reads []ObservedRead, writes []KeyValue) (Version, error) {
	return b.r.ValidatedUpdate(ctx, reads, writes)
}

func (b *clusterBackend) Subscribe(name string, sink func(Invalidation)) (cancel func(), err error) {
	return b.r.Subscribe(name, func(inv transport.Invalidation) {
		sink(db.Invalidation{Key: inv.Key, Version: inv.Version})
	})
}

// setRoundTripHistogram forwards WithTelemetry's round-trip histogram
// to every fleet node's client.
func (b *clusterBackend) setRoundTripHistogram(h *telemetry.Histogram) {
	b.r.SetRoundTripHistogram(h)
}

// Edge is a programmatic tcached: a mid-tier cache node that fills from
// a (usually remote) database, applies and relays its invalidation
// stream, and serves both the transactional client protocol and the
// backend protocol cluster routers read through. ServeEdge is to
// cmd/tcached what ServeDB is to cmd/tdbd.
type Edge struct {
	addr    string
	backend *transport.DBClient
	cache   *core.Cache
	srv     *transport.CacheServer
	unsub   func()
	reg     *telemetry.Registry
}

// ServeEdge starts an edge node: it dials the database at dbAddr,
// attaches a cache (configured by opts; only core cache options apply),
// subscribes to the invalidation stream — applying it locally and
// relaying it to downstream subscribers — and serves on listen (for
// example "127.0.0.1:0"). ctx bounds the initial dial and subscribe.
//
//tcache:metric
func ServeEdge(ctx context.Context, dbAddr, listen string, opts ...CacheOption) (*Edge, error) {
	o := cacheOptions{}
	o.core.Strategy = core.StrategyRetry
	for _, opt := range opts {
		opt(&o)
	}
	backend, err := transport.DialDB(ctx, dbAddr, 4)
	if err != nil {
		return nil, err
	}
	o.core.Backend = backend
	cache, err := core.New(o.core)
	if err != nil {
		backend.Close()
		return nil, err
	}
	srv := transport.NewCacheServer(cache, nil)
	// One registry per edge: the cache's counters/gauges/histograms, the
	// relay gauges, and the backend conn pool — served over OpStats (flat
	// encoding) and by ServeMetrics.
	reg := telemetry.NewRegistry()
	cache.RegisterMetrics(reg)
	srv.RegisterMetrics(reg)
	reg.Gauge("backend_pool_size", func() uint64 { return uint64(backend.PoolSize()) })
	reg.Gauge("backend_pool_live", func() uint64 { return uint64(backend.LiveConns()) })
	srv.SetRegistry(reg)
	name := o.name
	if name == "" {
		name = fmt.Sprintf("edge-%d-%d", os.Getpid(), _cacheSeq.Add(1))
	}
	unsub, err := transport.SubscribeInvalidations(ctx, dbAddr, name, func(inv transport.Invalidation) {
		cache.Invalidate(inv.Key, inv.Version)
		srv.Broadcast(inv)
	})
	if err != nil {
		cache.Close()
		backend.Close()
		return nil, fmt.Errorf("tcache: edge subscribe: %w", err)
	}
	addr, err := srv.Listen(listen)
	if err != nil {
		unsub()
		cache.Close()
		backend.Close()
		return nil, err
	}
	return &Edge{addr: addr, backend: backend, cache: cache, srv: srv, unsub: unsub, reg: reg}, nil
}

// Addr returns the edge's bound listen address.
func (e *Edge) Addr() string { return e.addr }

// Cache exposes the edge's cache for metrics.
func (e *Edge) Cache() *core.Cache { return e.cache }

// ServeMetrics starts the edge's admin HTTP listener at addr: /metrics
// serves the node's registry (hit/miss counters, read latency
// histograms, relay and conn-pool gauges), /healthz answers role=edge,
// and /debug/pprof serves the runtime profiles. It returns the bound
// address and a stop function — the programmatic form of tcached's
// -metrics-addr flag.
func (e *Edge) ServeMetrics(addr string) (bound string, stop func(), err error) {
	return telemetry.ServeAdmin(addr, e.reg, func() telemetry.Health {
		return telemetry.Health{Healthy: true, Role: "edge"}
	})
}

// Close stops serving, detaches from the invalidation stream, and shuts
// the cache and backend connections down.
func (e *Edge) Close() {
	e.srv.Close()
	e.unsub()
	e.cache.Close()
	e.backend.Close()
}
